#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "env/prototypes.h"
#include "env/sim_services.h"
#include "service/lambda_service.h"
#include "service/service_registry.h"

namespace serena {
namespace {

/// Fixture providing the contacts X-Relation plus live messenger services.
class RealizationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    send_message_ = MakeSendMessagePrototype();
    auto schema =
        ExtendedSchema::Create(
            "contacts",
            {{"name", DataType::kString},
             {"address", DataType::kString},
             {"text", DataType::kString, AttributeKind::kVirtual},
             {"messenger", DataType::kService},
             {"sent", DataType::kBool, AttributeKind::kVirtual}},
            {BindingPattern(send_message_, "messenger")})
            .ValueOrDie();
    contacts_ = std::make_unique<XRelation>(schema);
    contacts_
        ->Insert(Tuple{Value::String("Nicolas"),
                       Value::String("nicolas@elysee.fr"),
                       Value::String("email")})
        .ValueOrDie();
    contacts_
        ->Insert(Tuple{Value::String("Carla"),
                       Value::String("carla@elysee.fr"),
                       Value::String("email")})
        .ValueOrDie();
    contacts_
        ->Insert(Tuple{Value::String("Francois"),
                       Value::String("francois@im.gouv.fr"),
                       Value::String("jabber")})
        .ValueOrDie();

    email_ = std::make_shared<MessengerService>(
        "email", MessengerService::Kind::kEmail);
    jabber_ = std::make_shared<MessengerService>(
        "jabber", MessengerService::Kind::kJabber);
    ASSERT_TRUE(registry_.Register(email_).ok());
    ASSERT_TRUE(registry_.Register(jabber_).ok());
  }

  const BindingPattern& SendBp() const {
    return contacts_->schema().binding_patterns()[0];
  }

  PrototypePtr send_message_;
  std::unique_ptr<XRelation> contacts_;
  std::shared_ptr<MessengerService> email_;
  std::shared_ptr<MessengerService> jabber_;
  ServiceRegistry registry_;
};

// ---------------------------------------------------------------------------
// Assignment (Table 3 (e))
// ---------------------------------------------------------------------------

TEST_F(RealizationTest, AssignConstantRealizesAttribute) {
  XRelation r =
      AssignConstant(*contacts_, "text", Value::String("Bonjour!"))
          .ValueOrDie();
  EXPECT_TRUE(r.schema().IsReal("text"));
  EXPECT_TRUE(r.schema().IsVirtual("sent"));
  EXPECT_EQ(r.size(), 3u);
  for (const Tuple& t : r.tuples()) {
    EXPECT_EQ(r.ProjectValue(t, "text").ValueOrDie(),
              Value::String("Bonjour!"));
  }
  // sendMessage survives: text is an input, inputs may be real.
  EXPECT_EQ(r.schema().binding_patterns().size(), 1u);
}

TEST_F(RealizationTest, AssignFromAttributeCopiesPerTuple) {
  // text := address (silly but legal: both strings).
  XRelation r = AssignFromAttribute(*contacts_, "text", "address")
                    .ValueOrDie();
  for (const Tuple& t : r.tuples()) {
    EXPECT_EQ(r.ProjectValue(t, "text").ValueOrDie(),
              r.ProjectValue(t, "address").ValueOrDie());
  }
}

TEST_F(RealizationTest, AssignRejectsRealTarget) {
  EXPECT_FALSE(
      AssignConstant(*contacts_, "name", Value::String("x")).ok());
}

TEST_F(RealizationTest, AssignRejectsVirtualSource) {
  EXPECT_FALSE(AssignFromAttribute(*contacts_, "text", "sent").ok());
}

TEST_F(RealizationTest, AssignRejectsTypeMismatch) {
  EXPECT_FALSE(AssignConstant(*contacts_, "text", Value::Int(3)).ok());
  EXPECT_FALSE(
      AssignConstant(*contacts_, "sent", Value::String("yes")).ok());
}

TEST_F(RealizationTest, AssignOutputAttributeDropsBindingPattern) {
  // Realizing `sent` (an output of sendMessage) eliminates the pattern.
  XRelation r =
      AssignConstant(*contacts_, "sent", Value::Bool(true)).ValueOrDie();
  EXPECT_TRUE(r.schema().binding_patterns().empty());
}

TEST_F(RealizationTest, AssignedCoordinatePlacedInSchemaOrder) {
  XRelation r =
      AssignConstant(*contacts_, "text", Value::String("hi")).ValueOrDie();
  // Real attrs now: name, address, text, messenger -> text coordinate 2.
  EXPECT_EQ(r.schema().CoordinateOf("text"), std::size_t{2});
  EXPECT_EQ(r.schema().CoordinateOf("messenger"), std::size_t{3});
  const Tuple& t = r.tuples()[0];
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2], Value::String("hi"));
}

// ---------------------------------------------------------------------------
// Invocation (Table 3 (f))
// ---------------------------------------------------------------------------

TEST_F(RealizationTest, InvokeRequiresRealInputs) {
  // `text` is still virtual: invocation must be refused.
  InvokeOptions options;
  EXPECT_EQ(Invoke(*contacts_, SendBp(), &registry_, options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RealizationTest, InvokeRealizesOutputsAndRoutesPerTuple) {
  XRelation ready =
      AssignConstant(*contacts_, "text", Value::String("Bonjour!"))
          .ValueOrDie();
  const BindingPattern& bp = ready.schema().binding_patterns()[0];
  InvokeOptions options;
  options.instant = 5;
  XRelation sent = Invoke(ready, bp, &registry_, options).ValueOrDie();

  EXPECT_TRUE(sent.schema().IsReal("sent"));
  EXPECT_TRUE(sent.schema().binding_patterns().empty());
  EXPECT_EQ(sent.size(), 3u);
  for (const Tuple& t : sent.tuples()) {
    EXPECT_EQ(sent.ProjectValue(t, "sent").ValueOrDie(), Value::Bool(true));
  }
  // Per-tuple routing: email got 2 messages, jabber 1 (the key capability
  // the paper claims over UDF-style integration).
  EXPECT_EQ(email_->outbox().size(), 2u);
  EXPECT_EQ(jabber_->outbox().size(), 1u);
  EXPECT_EQ(jabber_->outbox()[0].address, "francois@im.gouv.fr");
  EXPECT_EQ(jabber_->outbox()[0].text, "Bonjour!");
  EXPECT_EQ(jabber_->outbox()[0].instant, 5);
}

TEST_F(RealizationTest, InvokeRecordsActionsForActivePatterns) {
  XRelation ready =
      AssignConstant(*contacts_, "text", Value::String("Bonjour!"))
          .ValueOrDie();
  ActionSet actions;
  InvokeOptions options;
  options.actions = &actions;
  ASSERT_TRUE(Invoke(ready, ready.schema().binding_patterns()[0], &registry_,
                     options)
                  .ok());
  EXPECT_EQ(actions.size(), 3u);
  const Action expected{
      "sendMessage", "messenger", "jabber",
      Tuple{Value::String("francois@im.gouv.fr"), Value::String("Bonjour!")}};
  EXPECT_EQ(actions.actions().count(expected), 1u);
}

TEST_F(RealizationTest, InvokeFailsOnMissingServiceByDefault) {
  XRelation ready =
      AssignConstant(*contacts_, "text", Value::String("x")).ValueOrDie();
  ASSERT_TRUE(registry_.Unregister("jabber").ok());
  InvokeOptions options;
  EXPECT_FALSE(Invoke(ready, ready.schema().binding_patterns()[0], &registry_,
                      options)
                   .ok());
}

TEST_F(RealizationTest, InvokeSkipPolicyDropsFailingTuples) {
  XRelation ready =
      AssignConstant(*contacts_, "text", Value::String("x")).ValueOrDie();
  ASSERT_TRUE(registry_.Unregister("jabber").ok());
  InvokeOptions options;
  options.error_policy = InvocationErrorPolicy::kSkipTuple;
  XRelation sent = Invoke(ready, ready.schema().binding_patterns()[0],
                          &registry_, options)
                       .ValueOrDie();
  EXPECT_EQ(sent.size(), 2u);  // Francois (jabber) skipped.
}

TEST_F(RealizationTest, InvokeWithMultiTupleOutputDuplicatesInput) {
  // A prototype returning several tuples per invocation (Def. 1 allows 0..n).
  auto list_names =
      Prototype::Create(
          "listNames",
          RelationSchema::Create({{"address", DataType::kString}})
              .ValueOrDie(),
          RelationSchema::Create({{"alias", DataType::kString}})
              .ValueOrDie(),
          /*active=*/false)
          .ValueOrDie();
  auto svc = std::make_shared<LambdaService>("dir");
  svc->AddMethod(list_names,
                 [](const Tuple& input, Timestamp) {
                   const std::string& addr = input[0].string_value();
                   return Result<std::vector<Tuple>>(std::vector<Tuple>{
                       Tuple{Value::String(addr + "/a")},
                       Tuple{Value::String(addr + "/b")}});
                 });
  ASSERT_TRUE(registry_.Register(svc).ok());

  auto schema =
      ExtendedSchema::Create(
          "dirs",
          {{"address", DataType::kString},
           {"directory", DataType::kService},
           {"alias", DataType::kString, AttributeKind::kVirtual}},
          {BindingPattern(list_names, "directory")})
          .ValueOrDie();
  XRelation dirs(schema);
  dirs.Insert(Tuple{Value::String("x"), Value::String("dir")}).ValueOrDie();

  InvokeOptions options;
  XRelation expanded = Invoke(dirs, dirs.schema().binding_patterns()[0],
                              &registry_, options)
                           .ValueOrDie();
  EXPECT_EQ(expanded.size(), 2u);  // One input tuple -> two output tuples.
}

TEST_F(RealizationTest, InvokeWithEmptyOutputDropsTuple) {
  // A service returning an empty relation removes the input tuple.
  auto probe =
      Prototype::Create(
          "probe",
          RelationSchema::Create({{"address", DataType::kString}})
              .ValueOrDie(),
          RelationSchema::Create({{"alive", DataType::kBool}}).ValueOrDie(),
          /*active=*/false)
          .ValueOrDie();
  auto svc = std::make_shared<LambdaService>("prober");
  svc->AddMethod(probe, [](const Tuple&, Timestamp) {
    return Result<std::vector<Tuple>>(std::vector<Tuple>{});
  });
  ASSERT_TRUE(registry_.Register(svc).ok());

  auto schema = ExtendedSchema::Create(
                    "probes",
                    {{"address", DataType::kString},
                     {"svc", DataType::kService},
                     {"alive", DataType::kBool, AttributeKind::kVirtual}},
                    {BindingPattern(probe, "svc")})
                    .ValueOrDie();
  XRelation probes(schema);
  probes.Insert(Tuple{Value::String("x"), Value::String("prober")})
      .ValueOrDie();
  InvokeOptions options;
  XRelation result = Invoke(probes, probes.schema().binding_patterns()[0],
                            &registry_, options)
                         .ValueOrDie();
  EXPECT_TRUE(result.empty());
}

// ---------------------------------------------------------------------------
// Instant determinism (§3.2) through the registry
// ---------------------------------------------------------------------------

TEST_F(RealizationTest, RegistryMemoizesWithinInstant) {
  XRelation ready =
      AssignConstant(*contacts_, "text", Value::String("hi")).ValueOrDie();
  const BindingPattern bp = ready.schema().binding_patterns()[0];
  InvokeOptions options;
  options.instant = 9;
  ASSERT_TRUE(Invoke(ready, bp, &registry_, options).ok());
  ASSERT_TRUE(Invoke(ready, bp, &registry_, options).ok());
  // Second run is served from the per-instant memo: no extra deliveries.
  EXPECT_EQ(email_->outbox().size(), 2u);
  EXPECT_EQ(registry_.stats().logical_invocations, 6u);
  EXPECT_EQ(registry_.stats().physical_invocations, 3u);

  // A new instant invalidates the memo: messages go out again.
  options.instant = 10;
  ASSERT_TRUE(Invoke(ready, bp, &registry_, options).ok());
  EXPECT_EQ(email_->outbox().size(), 4u);
}

}  // namespace
}  // namespace serena
