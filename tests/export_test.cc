// Golden tests for the standard exporters: Prometheus text exposition
// (name sanitization, label escaping, cumulative buckets) and Chrome
// trace_event JSON (structure, tracks, rebased timestamps, causal
// consistency of trace/span/parent ids across pool threads).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace serena {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Tiny format validators (no JSON library in the repo — by design).
// ---------------------------------------------------------------------------

/// Structural JSON well-formedness: balanced braces/brackets outside of
/// string literals, closed strings, legal escapes left to the consumer.
bool JsonIsBalanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

bool IsPrometheusNameChar(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

/// Validates one exposition-format sample line: `name{labels} value` or
/// `name value`, with a legal metric name and a parseable value.
bool ValidPrometheusSampleLine(const std::string& line) {
  if (line.empty()) return false;
  std::size_t i = 0;
  while (i < line.size() && IsPrometheusNameChar(line[i], i == 0)) ++i;
  if (i == 0) return false;
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  const std::string value = line.substr(i + 1);
  if (value.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Validates a whole exposition document: every line is either a `# TYPE
/// <name> <kind>` header or a sample line.
::testing::AssertionResult ValidPrometheusText(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string name;
      std::string kind;
      header >> name >> kind;
      if (name.empty() ||
          (kind != "counter" && kind != "gauge" && kind != "histogram")) {
        return ::testing::AssertionFailure() << "bad header: " << line;
      }
      continue;
    }
    if (!ValidPrometheusSampleLine(line)) {
      return ::testing::AssertionFailure() << "bad sample line: " << line;
    }
    ++samples;
  }
  if (samples == 0) {
    return ::testing::AssertionFailure() << "no samples";
  }
  return ::testing::AssertionSuccess();
}

std::vector<std::uint64_t> ExtractNumbers(const std::string& text,
                                          const std::string& key) {
  std::vector<std::uint64_t> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtoull(text.c_str() + pos, nullptr, 10));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(PrometheusExportTest, SanitizesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("serena.executor.tick_ns"),
            "serena_executor_tick_ns");
  EXPECT_EQ(PrometheusMetricName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName(""), "_");
  EXPECT_EQ(PrometheusMetricName("ok_name:sub"), "ok_name:sub");
}

TEST(PrometheusExportTest, EscapesLabelValues) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusExportTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.GetCounter("serena.test.events").Increment(7);
  registry.GetGauge("serena.test.depth").Set(-2);
  Histogram& histogram = registry.GetHistogram("serena.test.latency_ns");
  histogram.Record(300);
  histogram.Record(300);

  const std::string text = ExportPrometheus(registry);
  EXPECT_EQ(text,
            "# TYPE serena_test_events counter\n"
            "serena_test_events 7\n"
            "# TYPE serena_test_depth gauge\n"
            "serena_test_depth -2\n"
            "# TYPE serena_test_latency_ns histogram\n"
            "serena_test_latency_ns_bucket{le=\"256\"} 0\n"
            "serena_test_latency_ns_bucket{le=\"512\"} 2\n"
            "serena_test_latency_ns_bucket{le=\"+Inf\"} 2\n"
            "serena_test_latency_ns_sum 600\n"
            "serena_test_latency_ns_count 2\n");
  EXPECT_TRUE(ValidPrometheusText(text));
}

TEST(PrometheusExportTest, BucketsAreCumulativeAndCapped) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  histogram.Record(100);                     // Bucket 0 (< 256).
  histogram.Record(1000);                    // Bucket 2 (< 1024).
  histogram.Record(UINT64_MAX);              // Overflow bucket.

  const std::string text = ExportPrometheus(registry);
  // An overflow max must not index past the bounded buckets.
  EXPECT_NE(text.find("h_bucket{le=\"256\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"512\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"1024\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_count 3\n"), std::string::npos);
  EXPECT_TRUE(ValidPrometheusText(text));
}

TEST(PrometheusExportTest, DumpPrometheusMatchesExport) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment();
  EXPECT_EQ(registry.DumpPrometheus(), ExportPrometheus(registry));
}

TEST(PrometheusExportTest, MetricsFileWriterHonorsEnvVar) {
  const std::string path =
      ::testing::TempDir() + "/serena_metrics_test.prom";
  ASSERT_EQ(::setenv("SERENA_METRICS_FILE", path.c_str(), 1), 0);
  MetricsRegistry::Global().GetCounter("serena.test.file_writer")
      .Increment();
  EXPECT_TRUE(MaybeWriteMetricsFile(/*min_interval_ns=*/0));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("serena_test_file_writer"),
            std::string::npos);
  EXPECT_TRUE(ValidPrometheusText(buffer.str()));

  ASSERT_EQ(::unsetenv("SERENA_METRICS_FILE"), 0);
  EXPECT_FALSE(MaybeWriteMetricsFile(0));  // No destination, no write.
}

TEST(PrometheusExportTest, ZeroCountHistogramStillExportsSeries) {
  // A histogram that was created but never recorded into (e.g. a query
  // registered and immediately dropped) must still produce a complete,
  // parseable series: one bounded bucket, +Inf, sum and count — all 0.
  MetricsRegistry registry;
  registry.GetHistogram("serena.test.never_recorded");
  const std::string text = ExportPrometheus(registry);
  EXPECT_NE(
      text.find("serena_test_never_recorded_bucket{le=\"256\"} 0\n"),
      std::string::npos);
  EXPECT_NE(text.find("serena_test_never_recorded_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("serena_test_never_recorded_sum 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("serena_test_never_recorded_count 0\n"),
            std::string::npos);
  EXPECT_TRUE(ValidPrometheusText(text));
}

TEST(PrometheusExportTest, LabelEscapingEdgeCases) {
  // Escaping is idempotent-unfriendly by design (escaping twice doubles
  // backslashes) and must handle every special character in one value.
  EXPECT_EQ(PrometheusEscapeLabel(""), "");
  EXPECT_EQ(PrometheusEscapeLabel("\\"), "\\\\");
  EXPECT_EQ(PrometheusEscapeLabel("\\n"), "\\\\n");  // Literal backslash-n.
  EXPECT_EQ(PrometheusEscapeLabel("\n"), "\\n");     // Real newline.
  EXPECT_EQ(PrometheusEscapeLabel("a\\\"b\nc"), "a\\\\\\\"b\\nc");
  // Double-escaping doubles the backslashes rather than being a no-op.
  EXPECT_EQ(PrometheusEscapeLabel(PrometheusEscapeLabel("\\")), "\\\\\\\\");
}

TEST(PrometheusExportTest, CountersStayMonotonicAcrossSnapshots) {
  // The exposition format promises counters never go backwards between
  // scrapes; the registry's increments and repeated exports must agree.
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("serena.test.monotonic");
  std::uint64_t previous = 0;
  for (int round = 0; round < 5; ++round) {
    counter.Increment(static_cast<std::uint64_t>(round));
    const std::string text = ExportPrometheus(registry);
    // Newline-anchored so the `# TYPE` header line doesn't match.
    const std::string needle = "\nserena_test_monotonic ";
    const std::size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    const std::uint64_t scraped =
        std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
    EXPECT_GE(scraped, previous) << "counter went backwards at round "
                                 << round;
    EXPECT_EQ(scraped, counter.value());
    previous = scraped;
  }
}

TEST(PrometheusExportTest, FlushIgnoresRateLimit) {
  // The shutdown flush must write even when the periodic writer's
  // interval has not elapsed — that is its whole point.
  const std::string path = ::testing::TempDir() + "/serena_flush_test.prom";
  ASSERT_EQ(::setenv("SERENA_METRICS_FILE", path.c_str(), 1), 0);
  MetricsRegistry::Global().GetCounter("serena.test.flush").Increment();
  // Arm the rate limiter, then prove Flush bypasses it.
  (void)MaybeWriteMetricsFile(/*min_interval_ns=*/UINT64_MAX);
  EXPECT_FALSE(MaybeWriteMetricsFile(/*min_interval_ns=*/UINT64_MAX));
  MetricsRegistry::Global().GetCounter("serena.test.flush").Increment(41);
  EXPECT_TRUE(FlushMetricsFile());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("serena_test_flush 42"), std::string::npos);

  ASSERT_EQ(::unsetenv("SERENA_METRICS_FILE"), 0);
  EXPECT_FALSE(FlushMetricsFile());  // No destination, no write.
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

TEST(ChromeTraceExportTest, EmptyBufferStillWellFormed) {
  TraceBuffer buffer(/*capacity=*/4);
  const std::string trace = ExportChromeTrace(buffer);
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(JsonIsBalanced(trace));
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"logical instants\""), std::string::npos);
}

TEST(ChromeTraceExportTest, NestedSpansExportConsistentIds) {
  TraceBuffer buffer(/*capacity=*/16);
  buffer.set_enabled(true);
  {
    Span tick("executor.tick", /*instant=*/3, {}, &buffer);
    {
      Span step("executor.step", /*instant=*/3, "q1", &buffer);
      Span invoke("service.invoke", /*instant=*/3, "svc0", &buffer);
    }
  }
  const std::string trace = ExportChromeTrace(buffer);
  EXPECT_TRUE(JsonIsBalanced(trace));
  // One instant-track slice plus the three spans.
  EXPECT_NE(trace.find("\"instant 3\""), std::string::npos);
  EXPECT_NE(trace.find("\"executor.tick\""), std::string::npos);
  EXPECT_NE(trace.find("\"detail\":\"q1\""), std::string::npos);

  // All spans belong to the tick's trace; every nonzero parent_id is one
  // of the exported span_ids.
  const auto trace_ids = ExtractNumbers(trace, "trace_id");
  ASSERT_EQ(trace_ids.size(), 3u);
  EXPECT_EQ(trace_ids[0], trace_ids[1]);
  EXPECT_EQ(trace_ids[1], trace_ids[2]);
  const auto span_ids = ExtractNumbers(trace, "span_id");
  const auto parent_ids = ExtractNumbers(trace, "parent_id");
  const std::set<std::uint64_t> known(span_ids.begin(), span_ids.end());
  int roots = 0;
  for (const std::uint64_t parent : parent_ids) {
    if (parent == 0) {
      ++roots;
    } else {
      EXPECT_EQ(known.count(parent), 1u);
    }
  }
  EXPECT_EQ(roots, 1);  // Only the tick is a root.

  // Timestamps are rebased: the earliest event starts at ts 0.
  EXPECT_NE(trace.find("\"ts\":0,"), std::string::npos);
}

TEST(ChromeTraceExportTest, MemoLinksBecomeFlowArrows) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  std::uint64_t winner_id = 0;
  {
    Span winner("service.invoke", 1, "svc", &buffer);
    winner_id = winner.context().span_id;
  }
  {
    Span waiter("invoke.wait", 1, "svc", &buffer);
    waiter.set_link_span(winner_id);
  }
  const std::string trace = ExportChromeTrace(buffer);
  EXPECT_TRUE(JsonIsBalanced(trace));
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"memo-link\""), std::string::npos);
}

TEST(ChromeTraceExportTest, DanglingLinkEmitsNoFlow) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  {
    Span waiter("invoke.wait", 1, "svc", &buffer);
    waiter.set_link_span(987654321);  // Target long overwritten.
  }
  const std::string trace = ExportChromeTrace(buffer);
  EXPECT_TRUE(JsonIsBalanced(trace));
  EXPECT_EQ(trace.find("\"ph\":\"s\""), std::string::npos);
}

TEST(ChromeTraceExportTest, PoolThreadsShareTickTraceAcrossTracks) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  buffer.set_enabled(true);
  ThreadPool pool(2);
  std::uint64_t root_trace = 0;
  {
    Span root("executor.tick", /*instant=*/9);
    root_trace = root.context().trace_id;
    pool.ParallelFor(6, [](std::size_t i) {
      std::string detail = "q";
      detail += std::to_string(i);
      Span child("executor.step", /*instant=*/9, detail);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  buffer.set_enabled(false);
  const std::string trace = ExportChromeTrace(buffer);
  buffer.Clear();

  EXPECT_TRUE(JsonIsBalanced(trace));
  // Every exported span is part of the single tick trace, whatever
  // thread track it landed on.
  for (const std::uint64_t id : ExtractNumbers(trace, "trace_id")) {
    EXPECT_EQ(id, root_trace);
  }
  EXPECT_NE(trace.find("\"thread "), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace serena
