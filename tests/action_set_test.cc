#include "algebra/action.h"

#include <gtest/gtest.h>

namespace serena {
namespace {

Action MakeAction(const char* proto, const char* attr, const char* ref,
                  Tuple input) {
  return Action{proto, attr, ref, std::move(input)};
}

TEST(ActionTest, EqualityCoversAllComponents) {
  const Tuple input{Value::String("a@x"), Value::String("hi")};
  const Action base = MakeAction("sendMessage", "messenger", "email", input);
  EXPECT_EQ(base, MakeAction("sendMessage", "messenger", "email", input));
  EXPECT_FALSE(base ==
               MakeAction("sendPhoto", "messenger", "email", input));
  EXPECT_FALSE(base == MakeAction("sendMessage", "svc", "email", input));
  EXPECT_FALSE(base ==
               MakeAction("sendMessage", "messenger", "jabber", input));
  EXPECT_FALSE(base == MakeAction("sendMessage", "messenger", "email",
                                  Tuple{Value::String("b@x"),
                                        Value::String("hi")}));
}

TEST(ActionTest, OrderingIsTotalAndCanonical) {
  const Tuple t1{Value::Int(1)};
  const Tuple t2{Value::Int(2)};
  const Action a = MakeAction("a", "x", "s1", t1);
  const Action b = MakeAction("b", "x", "s1", t1);
  const Action c = MakeAction("a", "y", "s1", t1);
  const Action d = MakeAction("a", "x", "s2", t1);
  const Action e = MakeAction("a", "x", "s1", t2);
  EXPECT_LT(a, b);  // By prototype first.
  EXPECT_LT(a, c);  // Then service attribute.
  EXPECT_LT(a, d);  // Then service reference.
  EXPECT_LT(a, e);  // Then input tuple.
  EXPECT_FALSE(a < a);
}

TEST(ActionTest, ToStringMatchesPaperNotation) {
  const Action action = MakeAction(
      "sendMessage", "messenger", "email",
      Tuple{Value::String("nicolas@elysee.fr"), Value::String("Bonjour!")});
  EXPECT_EQ(action.ToString(),
            "(sendMessage[messenger], email, ('nicolas@elysee.fr', "
            "'Bonjour!'))");
}

TEST(ActionSetTest, SetSemanticsAndEquality) {
  ActionSet s1;
  ActionSet s2;
  const Tuple input{Value::String("a")};
  s1.Add(MakeAction("p", "x", "s", input));
  s1.Add(MakeAction("p", "x", "s", input));  // Duplicate collapses.
  EXPECT_EQ(s1.size(), 1u);
  EXPECT_NE(s1, s2);
  s2.Add(MakeAction("p", "x", "s", input));
  EXPECT_EQ(s1, s2);
  s1.Add(MakeAction("q", "x", "s", input));
  EXPECT_NE(s1, s2);
}

TEST(ActionSetTest, ToStringIsCanonicallyOrdered) {
  // Insertion order must not matter (sets compare by content).
  ActionSet forward;
  forward.Add(MakeAction("a", "x", "s", Tuple{Value::Int(1)}));
  forward.Add(MakeAction("b", "x", "s", Tuple{Value::Int(2)}));
  ActionSet backward;
  backward.Add(MakeAction("b", "x", "s", Tuple{Value::Int(2)}));
  backward.Add(MakeAction("a", "x", "s", Tuple{Value::Int(1)}));
  EXPECT_EQ(forward.ToString(), backward.ToString());
  EXPECT_EQ(ActionSet().ToString(), "{}");
}

}  // namespace
}  // namespace serena
