// Unit tests for the multi-pass static analyzer (src/analysis). Every
// SER0xx plan-level code is triggered at least once; the cross-query
// codes (SER04x) live in query_set_test.cc and the script code (SER060)
// in lint_runner_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/analyzer.h"
#include "env/scenario.h"
#include "obs/metrics.h"

namespace serena {
namespace {

bool HasCode(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const std::vector<Diagnostic>& diagnostics,
                           DiagCode code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return d;
  }
  static const Diagnostic missing{};
  ADD_FAILURE() << "no diagnostic with code " << DiagCodeId(code);
  return missing;
}

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  std::vector<Diagnostic> Analyze(const PlanPtr& plan,
                                  AnalyzerOptions options = {}) {
    return AnalyzePlan(plan, scenario_->env(), &scenario_->streams(), options)
        .ValueOrDie();
  }

  static FormulaPtr AttrEq(const std::string& attr, Value value) {
    return Formula::Compare(Operand::Attr(attr), CompareOp::kEq,
                            Operand::Const(std::move(value)));
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

// --- Pass 1: well-formedness -----------------------------------------------

TEST_F(AnalyzerTest, Ser001UnknownRelationWithDidYouMeanHint) {
  const auto diagnostics = Analyze(Scan("contact"));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kUnknownRelation);
  EXPECT_TRUE(d.is_error());
  EXPECT_NE(d.message.find("contact"), std::string::npos);
  EXPECT_NE(d.hint.find("contacts"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser001ScanOfStreamSuggestsWindow) {
  const auto diagnostics = Analyze(Scan("temperatures"));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kUnknownRelation);
  EXPECT_NE(d.hint.find("window"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser002UnknownStream) {
  const auto diagnostics = Analyze(Window("temperature", 1));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kUnknownStream);
  EXPECT_TRUE(d.is_error());
  EXPECT_NE(d.hint.find("temperatures"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser003InvalidFormula) {
  const auto diagnostics = Analyze(
      Select(Scan("contacts"), AttrEq("missing", Value::Int(1))));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kInvalidFormula));
}

TEST_F(AnalyzerTest, Ser004ProjectionOfMissingAttribute) {
  const auto diagnostics = Analyze(Project(Scan("contacts"), {"nope"}));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kInvalidOperatorArgs));
}

TEST_F(AnalyzerTest, Ser005AssignToRealAttribute) {
  const auto diagnostics =
      Analyze(Assign(Scan("contacts"), "name", Value::String("x")));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kAssignToReal);
  EXPECT_NE(d.message.find("already real"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser006UnknownBindingPattern) {
  // `surveillance` declares no binding patterns at all.
  const auto diagnostics =
      Analyze(Invoke(Scan("surveillance"), "sendMessage"));
  const Diagnostic& d =
      FindCode(diagnostics, DiagCode::kUnknownBindingPattern);
  EXPECT_NE(d.hint.find("no binding patterns"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser007UnrealizedInvokeInput) {
  const auto diagnostics = Analyze(Invoke(Scan("contacts"), "sendMessage"));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kUnrealizedInput);
  EXPECT_NE(d.message.find("text"), std::string::npos);
  EXPECT_NE(d.hint.find("assignment"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser008SetOpSchemaMismatch) {
  const auto diagnostics =
      Analyze(UnionOf(Scan("contacts"), Scan("cameras")));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kSchemaMismatch));
}

TEST_F(AnalyzerTest, Ser009StreamingContextDependsOnOptions) {
  const PlanPtr plan =
      Streaming(Scan("contacts"), StreamingType::kInsertion);

  AnalyzerOptions one_shot;
  one_shot.context = AnalysisContext::kOneShot;
  const auto hard = Analyze(plan, one_shot);
  EXPECT_TRUE(FindCode(hard, DiagCode::kStreamingContext).is_error());

  const auto neutral = Analyze(plan);
  const Diagnostic& warning =
      FindCode(neutral, DiagCode::kStreamingContext);
  EXPECT_EQ(warning.severity, Diagnostic::Severity::kWarning);

  AnalyzerOptions continuous;
  continuous.context = AnalysisContext::kContinuous;
  EXPECT_FALSE(
      HasCode(Analyze(plan, continuous), DiagCode::kStreamingContext));
}

TEST_F(AnalyzerTest, Ser010ResidualSchemaInferenceFailure) {
  // Every per-node precondition holds (attribute exists and is real), but
  // schema derivation still fails: sum() over a STRING attribute.
  const auto diagnostics = Analyze(Aggregate(
      Scan("contacts"), {},
      {AggregateSpec{AggregateFn::kSum, "name", "total"}}));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kSchemaInference);
  EXPECT_NE(d.message.find("non-numeric"), std::string::npos);
}

// --- Pass 2: realization dataflow ------------------------------------------

TEST_F(AnalyzerTest, Ser020VirtualReadWithRealizationHint) {
  const auto diagnostics = Analyze(
      Select(Scan("sensors"), AttrEq("temperature", Value::Real(30.0))));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kVirtualRead);
  EXPECT_TRUE(d.is_error());
  EXPECT_NE(d.hint.find("invoke[getTemperature]"), std::string::npos);
}

TEST_F(AnalyzerTest, Ser020AggregateOverVirtualAttribute) {
  const auto diagnostics = Analyze(Aggregate(
      Scan("sensors"), {"location"},
      {AggregateSpec{AggregateFn::kAvg, "temperature", "mean"}}));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kVirtualRead));
}

TEST_F(AnalyzerTest, Ser021DeadPassiveRealizationWarned) {
  // getTemperature is passive and its only output is dropped: every
  // physical call is wasted.
  const auto diagnostics = Analyze(
      Project(Invoke(Scan("sensors"), "getTemperature"), {"location"}));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kDeadRealization);
  EXPECT_EQ(d.severity, Diagnostic::Severity::kWarning);
}

TEST_F(AnalyzerTest, Ser021NotRaisedForActiveInvocations) {
  // Q1's sendMessage output `sent` is dropped here, but an active
  // invocation exists for its side effect (Def. 8) — no warning.
  const auto diagnostics =
      Analyze(Project(scenario_->Q1(), {"name"}));
  EXPECT_FALSE(HasCode(diagnostics, DiagCode::kDeadRealization));
}

TEST_F(AnalyzerTest, Ser021NotRaisedWhenOutputIsUsed) {
  const auto diagnostics = Analyze(Select(
      Invoke(Scan("sensors"), "getTemperature"),
      Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                       Operand::Const(Value::Real(30.0)))));
  EXPECT_FALSE(HasCode(diagnostics, DiagCode::kDeadRealization));
}

// --- Pass 3: side effects --------------------------------------------------

TEST_F(AnalyzerTest, Ser030ActiveInvokeUnderFilter) {
  const auto diagnostics = Analyze(scenario_->Q1Prime());
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kActiveUnderFilter);
  EXPECT_EQ(d.severity, Diagnostic::Severity::kWarning);
  EXPECT_NE(d.message.find("Q1'"), std::string::npos);
  // The well-ordered Q1 stays quiet.
  EXPECT_FALSE(HasCode(Analyze(scenario_->Q1()),
                       DiagCode::kActiveUnderFilter));
}

TEST_F(AnalyzerTest, Ser031ActiveInvokeOnDiscardedSideOfDifference) {
  const PlanPtr messaged =
      Invoke(Assign(Scan("contacts"), "text", Value::String("hi")),
             "sendMessage");
  const auto diagnostics = Analyze(DifferenceOf(messaged, messaged));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kActiveOnlyFiltering));
}

// --- Cost / cardinality lints ----------------------------------------------

TEST_F(AnalyzerTest, Ser050CartesianJoinWarned) {
  const auto diagnostics =
      Analyze(Join(Window("temperatures", 1), Scan("contacts")));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kCartesianJoin));
}

TEST_F(AnalyzerTest, Ser051EmptyAndUnboundedWindowsWarned) {
  EXPECT_TRUE(HasCode(Analyze(Window("temperatures", 0)),
                      DiagCode::kUnboundedWindow));
  AnalyzerOptions options;
  options.unbounded_window_threshold = 100;
  EXPECT_TRUE(HasCode(Analyze(Window("temperatures", 100), options),
                      DiagCode::kUnboundedWindow));
  EXPECT_FALSE(HasCode(Analyze(Window("temperatures", 99), options),
                       DiagCode::kUnboundedWindow));
}

TEST_F(AnalyzerTest, Ser052PatternEliminatingProjectionWarned) {
  const auto diagnostics = Analyze(Project(Scan("contacts"), {"name"}));
  EXPECT_TRUE(HasCode(diagnostics, DiagCode::kPatternlessProjection));
}

// --- Framework behavior ----------------------------------------------------

TEST_F(AnalyzerTest, CanonicalQueriesAreClean) {
  AnalyzerOptions continuous;
  continuous.context = AnalysisContext::kContinuous;
  for (const PlanPtr& q : {scenario_->Q1(), scenario_->Q2()}) {
    EXPECT_TRUE(IsValid(Analyze(q))) << q->ToString();
  }
  for (const PlanPtr& q : {scenario_->Q3(), scenario_->Q4()}) {
    EXPECT_TRUE(IsValid(Analyze(q, continuous))) << q->ToString();
  }
}

TEST_F(AnalyzerTest, WarningsSuppressedWhenNotRequested) {
  AnalyzerOptions options;
  options.include_warnings = false;
  EXPECT_TRUE(Analyze(scenario_->Q1Prime(), options).empty());
}

TEST_F(AnalyzerTest, DiagnosticRenderingCarriesCodeAndNode) {
  const auto diagnostics = Analyze(Invoke(Scan("contacts"), "sendMessage"));
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kUnrealizedInput);
  const std::string rendered = d.ToString();
  EXPECT_NE(rendered.find("SER007"), std::string::npos);
  EXPECT_NE(rendered.find("invoke[sendMessage]"), std::string::npos);
  const std::string json = DiagnosticsToJson(diagnostics);
  EXPECT_NE(json.find("\"code\":\"SER007\""), std::string::npos);
}

TEST_F(AnalyzerTest, SiblingErrorsAllCollected) {
  const auto diagnostics = Analyze(UnionOf(Scan("ghost1"), Scan("ghost2")));
  EXPECT_EQ(CountErrors(diagnostics), 2u);
}

TEST_F(AnalyzerTest, AnalysisCountersIncrement) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  const std::uint64_t errors_before =
      metrics.GetCounter("serena.analyze.errors").value();
  const std::uint64_t warnings_before =
      metrics.GetCounter("serena.analyze.warnings").value();
  (void)Analyze(Scan("ghost"));
  (void)Analyze(scenario_->Q1Prime());
  EXPECT_GE(metrics.GetCounter("serena.analyze.errors").value(),
            errors_before + 1);
  EXPECT_GE(metrics.GetCounter("serena.analyze.warnings").value(),
            warnings_before + 1);
}

TEST_F(AnalyzerTest, EveryCodeHasAStableId) {
  EXPECT_STREQ(DiagCodeId(DiagCode::kUnknownRelation), "SER001");
  EXPECT_STREQ(DiagCodeId(DiagCode::kSchemaInference), "SER010");
  EXPECT_STREQ(DiagCodeId(DiagCode::kVirtualRead), "SER020");
  EXPECT_STREQ(DiagCodeId(DiagCode::kActiveUnderFilter), "SER030");
  EXPECT_STREQ(DiagCodeId(DiagCode::kQueryCycle), "SER040");
  EXPECT_STREQ(DiagCodeId(DiagCode::kCartesianJoin), "SER050");
  EXPECT_STREQ(DiagCodeId(DiagCode::kScriptStatement), "SER060");
}

}  // namespace
}  // namespace serena
