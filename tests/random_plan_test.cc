#include <gtest/gtest.h>

#include "common/random.h"
#include "ddl/algebra_parser.h"
#include "env/scenario.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"
#include "stream/continuous_query.h"

namespace serena {
namespace {

/// Whole-system property tests: a generator builds random *valid* Serena
/// plans over the scenario environment, and every generated plan must
/// satisfy:
///   1. static schema inference == the schema of the evaluated result;
///   2. ToString → ParseAlgebra round-trips;
///   3. the optimizer's output is Def. 9-equivalent and never costlier;
///   4. for stream-free plans, continuous Step == one-shot Execute over a
///      static environment at the same instant.
class RandomPlanTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    TemperatureScenarioOptions options;
    options.extra_sensors = 4;
    options.extra_contacts = 2;
    scenario_ = TemperatureScenario::Build(options).MoveValueOrDie();
    rng_ = std::make_unique<Rng>(GetParam() * 7919 + 3);
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }

  Result<ExtendedSchemaPtr> SchemaOf(const PlanPtr& plan) {
    return plan->InferSchema(env(), &streams());
  }

  Value RandomConstant(DataType type) {
    switch (type) {
      case DataType::kBool:
        return Value::Bool(rng_->NextBool(0.5));
      case DataType::kInt:
        return Value::Int(rng_->NextInt(0, 9));
      case DataType::kReal:
        return Value::Real(static_cast<double>(rng_->NextInt(0, 400)) / 10.0);
      default: {
        static const char* kPool[] = {"office", "corridor", "roof",
                                      "Carla",  "email",    "x"};
        return Value::String(kPool[rng_->NextBounded(6)]);
      }
    }
  }

  /// A random comparison over a random real attribute of `schema`.
  FormulaPtr RandomFormula(const ExtendedSchema& schema) {
    const auto reals = schema.RealNames();
    const std::string& attr = reals[rng_->NextBounded(reals.size())];
    const DataType type = schema.FindAttribute(attr)->type;
    CompareOp op;
    if (type == DataType::kBool || type == DataType::kBlob) {
      op = rng_->NextBool(0.5) ? CompareOp::kEq : CompareOp::kNe;
    } else {
      static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                       CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe};
      op = kOps[rng_->NextBounded(6)];
    }
    if (type == DataType::kBlob) {
      // Compare blob attrs only against themselves (no blob literals).
      return Formula::Compare(Operand::Attr(attr), op, Operand::Attr(attr));
    }
    return Formula::Compare(Operand::Attr(attr), op,
                            Operand::Const(RandomConstant(type)));
  }

  /// Grows a random valid plan of roughly `depth` operators.
  PlanPtr RandomPlan(int depth) {
    static const char* kRelations[] = {"sensors", "contacts", "cameras",
                                       "surveillance"};
    PlanPtr plan = Scan(kRelations[rng_->NextBounded(4)]);
    for (int level = 0; level < depth; ++level) {
      auto schema = SchemaOf(plan);
      if (!schema.ok()) break;  // Defensive; should not happen.
      const ExtendedSchema& s = **schema;
      switch (rng_->NextBounded(7)) {
        case 0:
          plan = Select(plan, RandomFormula(s));
          break;
        case 1: {
          // Random non-empty attribute subset, schema order.
          std::vector<std::string> kept;
          for (const Attribute& attr : s.attributes()) {
            if (rng_->NextBool(0.7)) kept.push_back(attr.name);
          }
          if (kept.empty()) kept.push_back(s.attribute(0).name);
          plan = Project(plan, std::move(kept));
          break;
        }
        case 2: {
          const auto& attr =
              s.attribute(rng_->NextBounded(s.size())).name;
          plan = Rename(plan, attr,
                        attr + "_r" + std::to_string(level));
          break;
        }
        case 3: {
          // Assignable virtual attributes (blob constants have no literal
          // form, so skip them).
          std::vector<std::string> candidates;
          for (const std::string& name : s.VirtualNames()) {
            if (s.FindAttribute(name)->type != DataType::kBlob) {
              candidates.push_back(name);
            }
          }
          if (candidates.empty()) break;
          const std::string& target =
              candidates[rng_->NextBounded(candidates.size())];
          plan = Assign(plan, target,
                        RandomConstant(s.FindAttribute(target)->type));
          break;
        }
        case 4: {
          // Invoke a binding pattern whose inputs are all real.
          for (const BindingPattern& bp : s.binding_patterns()) {
            bool ready = true;
            for (const std::string& input :
                 bp.prototype().input().Names()) {
              if (!s.IsReal(input)) ready = false;
            }
            if (ready) {
              plan = Invoke(plan, bp.prototype().name(),
                            bp.service_attribute());
              break;
            }
          }
          break;
        }
        case 5: {
          // Join against a base relation.
          plan = Join(plan, Scan(kRelations[rng_->NextBounded(4)]));
          break;
        }
        default: {
          // Union with itself (schemas trivially match).
          plan = UnionOf(plan, plan);
          break;
        }
      }
    }
    return plan;
  }

  std::unique_ptr<TemperatureScenario> scenario_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(RandomPlanTest, InferenceMatchesEvaluation) {
  for (int round = 0; round < 6; ++round) {
    PlanPtr plan = RandomPlan(1 + static_cast<int>(rng_->NextBounded(5)));
    auto schema = SchemaOf(plan);
    ASSERT_TRUE(schema.ok()) << plan->ToString() << "\n" << schema.status();
    auto result = Execute(plan, &env(), &streams(),
                          static_cast<Timestamp>(round + 1));
    ASSERT_TRUE(result.ok()) << plan->ToString() << "\n" << result.status();
    EXPECT_TRUE(result->relation.schema().SameAttributes(**schema))
        << plan->ToString();
  }
}

TEST_P(RandomPlanTest, RenderedPlansReparse) {
  for (int round = 0; round < 6; ++round) {
    PlanPtr plan = RandomPlan(1 + static_cast<int>(rng_->NextBounded(5)));
    auto reparsed = ParseAlgebra(plan->ToString());
    ASSERT_TRUE(reparsed.ok()) << plan->ToString() << "\n"
                               << reparsed.status();
    EXPECT_EQ((*reparsed)->ToString(), plan->ToString());
  }
}

TEST_P(RandomPlanTest, OptimizerPreservesEquivalence) {
  Rewriter rewriter(&env(), &streams());
  for (int round = 0; round < 6; ++round) {
    PlanPtr plan = RandomPlan(1 + static_cast<int>(rng_->NextBounded(5)));
    auto optimized = rewriter.Optimize(plan);
    ASSERT_TRUE(optimized.ok()) << plan->ToString();
    auto report = CheckEquivalence(plan, *optimized, &env(), &streams(),
                                   static_cast<Timestamp>(round + 50));
    ASSERT_TRUE(report.ok()) << plan->ToString();
    EXPECT_TRUE(report->equivalent())
        << "plan:      " << plan->ToString()
        << "\nrewritten: " << (*optimized)->ToString() << "\n"
        << report->ToString();
    auto before = EstimateCost(plan, env(), &streams());
    auto after = EstimateCost(*optimized, env(), &streams());
    if (before.ok() && after.ok()) {
      EXPECT_LE(after->Total(), before->Total() + 1e-9)
          << plan->ToString();
    }
  }
}

TEST_P(RandomPlanTest, ContinuousStepMatchesOneShotOnStaticEnvironment) {
  for (int round = 0; round < 4; ++round) {
    PlanPtr plan = RandomPlan(1 + static_cast<int>(rng_->NextBounded(4)));
    const Timestamp instant = static_cast<Timestamp>(round + 100);
    ContinuousQuery query("q", plan);
    auto stepped = query.Step(&env(), &streams(), instant);
    ASSERT_TRUE(stepped.ok()) << plan->ToString();
    auto one_shot = Execute(plan, &env(), &streams(), instant);
    ASSERT_TRUE(one_shot.ok()) << plan->ToString();
    EXPECT_TRUE(stepped->SetEquals(one_shot->relation))
        << plan->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace serena
