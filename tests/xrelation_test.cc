#include "xrel/xrelation.h"

#include <gtest/gtest.h>

#include "schema/extended_schema.h"
#include "service/prototype.h"

namespace serena {
namespace {

RelationSchema MakeSchema(std::vector<Attribute> attrs) {
  return RelationSchema::Create(std::move(attrs)).ValueOrDie();
}

PrototypePtr SendMessageProto() {
  return Prototype::Create(
             "sendMessage",
             MakeSchema({{"address", DataType::kString},
                         {"text", DataType::kString}}),
             MakeSchema({{"sent", DataType::kBool}}),
             /*active=*/true)
      .ValueOrDie();
}

/// The `contacts` X-Relation of Example 4.
ExtendedSchemaPtr ContactSchema() {
  return ExtendedSchema::Create(
             "contacts",
             {{"name", DataType::kString},
              {"address", DataType::kString},
              {"text", DataType::kString, AttributeKind::kVirtual},
              {"messenger", DataType::kService},
              {"sent", DataType::kBool, AttributeKind::kVirtual}},
             {BindingPattern(SendMessageProto(), "messenger")})
      .ValueOrDie();
}

TEST(ExtendedSchemaTest, PartitionAndCoordinates) {
  auto schema = ContactSchema();
  EXPECT_EQ(schema->size(), 5u);
  EXPECT_EQ(schema->real_arity(), 3u);
  EXPECT_EQ(schema->RealNames(),
            (std::vector<std::string>{"name", "address", "messenger"}));
  EXPECT_EQ(schema->VirtualNames(),
            (std::vector<std::string>{"text", "sent"}));
  // Example 4: messenger = attr_Contact(4) maps to coordinate 3 (1-based)
  // i.e. index 2 (0-based).
  EXPECT_EQ(schema->CoordinateOf("messenger"), std::size_t{2});
  EXPECT_EQ(schema->CoordinateOf("name"), std::size_t{0});
  EXPECT_EQ(schema->CoordinateOf("address"), std::size_t{1});
  EXPECT_FALSE(schema->CoordinateOf("text").has_value());
  EXPECT_FALSE(schema->CoordinateOf("nonexistent").has_value());
}

TEST(ExtendedSchemaTest, RejectsBindingPatternOnVirtualServiceAttribute) {
  auto result = ExtendedSchema::Create(
      "bad",
      {{"address", DataType::kString},
       {"text", DataType::kString, AttributeKind::kVirtual},
       {"messenger", DataType::kService, AttributeKind::kVirtual},
       {"sent", DataType::kBool, AttributeKind::kVirtual}},
      {BindingPattern(SendMessageProto(), "messenger")});
  EXPECT_FALSE(result.ok());
}

TEST(ExtendedSchemaTest, RejectsRealOutputAttribute) {
  // `sent` must be virtual because it is an output of sendMessage.
  auto result = ExtendedSchema::Create(
      "bad",
      {{"address", DataType::kString},
       {"text", DataType::kString, AttributeKind::kVirtual},
       {"messenger", DataType::kService},
       {"sent", DataType::kBool}},
      {BindingPattern(SendMessageProto(), "messenger")});
  EXPECT_FALSE(result.ok());
}

TEST(ExtendedSchemaTest, RejectsMissingInputAttribute) {
  auto result = ExtendedSchema::Create(
      "bad",
      {{"text", DataType::kString, AttributeKind::kVirtual},
       {"messenger", DataType::kService},
       {"sent", DataType::kBool, AttributeKind::kVirtual}},
      {BindingPattern(SendMessageProto(), "messenger")});
  EXPECT_FALSE(result.ok());  // `address` missing.
}

TEST(ExtendedSchemaTest, RejectsDuplicateAttributes) {
  auto result = ExtendedSchema::Create(
      "bad", {{"a", DataType::kInt}, {"a", DataType::kString}});
  EXPECT_FALSE(result.ok());
}

TEST(XRelationTest, InsertProjectAndDedup) {
  XRelation contacts(ContactSchema());
  // Example 4's first tuple.
  Tuple nicolas{Value::String("Nicolas"), Value::String("nicolas@elysee.fr"),
                Value::String("email")};
  ASSERT_TRUE(contacts.Insert(nicolas).ValueOrDie());
  EXPECT_FALSE(contacts.Insert(nicolas).ValueOrDie());  // Set semantics.
  EXPECT_EQ(contacts.size(), 1u);

  // t[messenger] = 'email' (Example 4).
  EXPECT_EQ(contacts.ProjectValue(nicolas, "messenger").ValueOrDie(),
            Value::String("email"));
  EXPECT_EQ(contacts.ProjectValue(nicolas, "address").ValueOrDie(),
            Value::String("nicolas@elysee.fr"));
  // Projection onto a virtual attribute is an error.
  EXPECT_FALSE(contacts.ProjectValue(nicolas, "text").ok());
}

TEST(XRelationTest, ValidatesArityAndTypes) {
  XRelation contacts(ContactSchema());
  // Wrong arity: 5 values (virtual attributes carry no coordinate).
  EXPECT_FALSE(contacts
                   .Insert(Tuple{Value::String("a"), Value::String("b"),
                                 Value::String("c"), Value::String("d"),
                                 Value::Bool(true)})
                   .ok());
  // Wrong type for messenger.
  EXPECT_FALSE(
      contacts.Insert(Tuple{Value::String("a"), Value::String("b"),
                            Value::Int(3)})
          .ok());
}

TEST(XRelationTest, EraseAndContains) {
  XRelation contacts(ContactSchema());
  Tuple a{Value::String("A"), Value::String("a@x"), Value::String("email")};
  Tuple b{Value::String("B"), Value::String("b@x"), Value::String("jabber")};
  ASSERT_TRUE(contacts.Insert(a).ValueOrDie());
  ASSERT_TRUE(contacts.Insert(b).ValueOrDie());
  EXPECT_TRUE(contacts.Contains(a));
  EXPECT_TRUE(contacts.Erase(a));
  EXPECT_FALSE(contacts.Contains(a));
  EXPECT_TRUE(contacts.Contains(b));
  EXPECT_FALSE(contacts.Erase(a));
  EXPECT_EQ(contacts.size(), 1u);
}

TEST(XRelationTest, SetEquals) {
  XRelation r1(ContactSchema());
  XRelation r2(ContactSchema());
  Tuple a{Value::String("A"), Value::String("a@x"), Value::String("email")};
  Tuple b{Value::String("B"), Value::String("b@x"), Value::String("jabber")};
  ASSERT_TRUE(r1.Insert(a).ok());
  ASSERT_TRUE(r1.Insert(b).ok());
  ASSERT_TRUE(r2.Insert(b).ok());
  EXPECT_FALSE(r1.SetEquals(r2));
  ASSERT_TRUE(r2.Insert(a).ok());
  EXPECT_TRUE(r1.SetEquals(r2));  // Order-insensitive.
}

TEST(XRelationTest, TableStringShowsVirtualStar) {
  XRelation contacts(ContactSchema());
  ASSERT_TRUE(contacts
                  .Insert(Tuple{Value::String("Nicolas"),
                                Value::String("nicolas@elysee.fr"),
                                Value::String("email")})
                  .ok());
  const std::string table = contacts.ToTableString();
  EXPECT_NE(table.find("text"), std::string::npos);
  EXPECT_NE(table.find("*"), std::string::npos);
  EXPECT_NE(table.find("'Nicolas'"), std::string::npos);
}

}  // namespace
}  // namespace serena
