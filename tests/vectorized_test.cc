// Unit tests for the vectorized batch execution core itself: the
// configuration knobs, the fusion surface, the pipeline metrics and
// per-operator batch counts, batch-pool reuse, the flattened-conjunction
// predicate fast path, and the scalar-fallback gates.

#include "algebra/vectorized.h"

#include <gtest/gtest.h>

#include <sstream>

#include "algebra/explain.h"
#include "algebra/formula.h"
#include "algebra/plan.h"
#include "algebra/tuple_batch.h"
#include "env/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/continuous_query.h"

namespace serena {
namespace {

class VecModeGuard {
 public:
  explicit VecModeGuard(bool enabled) { vec::SetEnabledForTesting(enabled); }
  ~VecModeGuard() { vec::SetEnabledForTesting(std::nullopt); }
};

TEST(VectorizedConfigTest, BatchSizeKnobIsClampedAndRestorable) {
  vec::SetBatchSizeForTesting(7);
  EXPECT_EQ(vec::BatchSize(), 7u);
  vec::SetBatchSizeForTesting(0);  // Clamped to at least one row.
  EXPECT_GE(vec::BatchSize(), 1u);
  vec::SetBatchSizeForTesting(std::nullopt);
  EXPECT_GE(vec::BatchSize(), 1u);
}

TEST(VectorizedConfigTest, FusedRootsAreTheFusableOperators) {
  EXPECT_TRUE(vec::IsFusedRoot(PlanKind::kSelect));
  EXPECT_TRUE(vec::IsFusedRoot(PlanKind::kProject));
  EXPECT_TRUE(vec::IsFusedRoot(PlanKind::kRename));
  EXPECT_TRUE(vec::IsFusedRoot(PlanKind::kAssign));
  EXPECT_TRUE(vec::IsFusedRoot(PlanKind::kJoin));
  // Leaves are batch sources, not roots; everything else stays scalar.
  EXPECT_FALSE(vec::IsFusedRoot(PlanKind::kScan));
  EXPECT_FALSE(vec::IsFusedRoot(PlanKind::kWindow));
  EXPECT_FALSE(vec::IsFusedRoot(PlanKind::kAggregate));
}

TEST(TupleBatchTest, PoolReusesBatchesAcrossMarks) {
  vec::BatchPool pool;
  const std::size_t mark = pool.Mark();
  vec::TupleBatch* a = pool.Acquire();
  vec::TupleBatch* b = pool.Acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.allocated(), 2u);
  pool.ReleaseToMark(mark);
  // Released batches are handed out again — no new allocations.
  EXPECT_EQ(pool.Acquire(), a);
  EXPECT_EQ(pool.Acquire(), b);
  EXPECT_EQ(pool.allocated(), 2u);
}

TEST(TupleBatchTest, HashesTravelWithBorrowedRowsOnly) {
  vec::TupleBatch batch;
  Tuple t(std::vector<Value>{Value::Int(1)});
  batch.AppendRef(&t, 42u);
  EXPECT_EQ(batch.hash_at(0), 42u);
  batch.Clear();
  batch.AppendOwned(Tuple(std::vector<Value>{Value::Int(2)}));
  // Owned rows never carry a producer hash.
  EXPECT_EQ(batch.hash_at(0), 0u);
}

TEST(CompiledPredicateTest, FlattenedConjunctionDecidesLikeEvaluate) {
  auto schema =
      ExtendedSchema::Create("r", {{"a", DataType::kInt},
                                   {"b", DataType::kReal}})
          .ValueOrDie();
  FormulaPtr formula = Formula::And(
      Formula::Compare(Operand::Attr("a"), CompareOp::kGt,
                       Operand::Const(Value::Int(10))),
      Formula::Compare(Operand::Attr("b"), CompareOp::kLt,
                       Operand::Const(Value::Real(5.0))));
  std::vector<CompiledComparison> conjuncts;
  ASSERT_TRUE(formula->FlattenConjunction(*schema, &conjuncts));
  ASSERT_EQ(conjuncts.size(), 2u);

  const Tuple pass(std::vector<Value>{Value::Int(11), Value::Real(1.0)});
  const Tuple fail(std::vector<Value>{Value::Int(11), Value::Real(9.0)});
  for (const Tuple* tuple : {&pass, &fail}) {
    bool flattened = true;
    for (const CompiledComparison& conjunct : conjuncts) {
      auto value = conjunct.Eval(*tuple);
      ASSERT_TRUE(value.ok());
      if (!*value) {
        flattened = false;
        break;
      }
    }
    EXPECT_EQ(flattened, formula->Evaluate(*schema, *tuple).ValueOrDie());
  }
}

TEST(CompiledPredicateTest, NonConjunctionsAndBadOperandsRefuseToFlatten) {
  auto schema =
      ExtendedSchema::Create("r", {{"a", DataType::kInt}}).ValueOrDie();
  std::vector<CompiledComparison> conjuncts;
  EXPECT_FALSE(Formula::Or(Formula::Compare(Operand::Attr("a"),
                                            CompareOp::kEq,
                                            Operand::Const(Value::Int(1))),
                           Formula::Compare(Operand::Attr("a"),
                                            CompareOp::kEq,
                                            Operand::Const(Value::Int(2))))
                   ->FlattenConjunction(*schema, &conjuncts));
  EXPECT_FALSE(Formula::Not(Formula::Compare(Operand::Attr("a"),
                                             CompareOp::kEq,
                                             Operand::Const(Value::Int(1))))
                   ->FlattenConjunction(*schema, &conjuncts));
  conjuncts.clear();
  EXPECT_FALSE(Formula::Compare(Operand::Attr("missing"), CompareOp::kEq,
                                Operand::Const(Value::Int(1)))
                   ->FlattenConjunction(*schema, &conjuncts));
  conjuncts.clear();
  EXPECT_FALSE(Formula::Compare(Operand::Attr("a"), CompareOp::kEq,
                                Operand::Param("p"))
                   ->FlattenConjunction(*schema, &conjuncts));
  // The error-preserving path stays on Compile, which refuses too.
  EXPECT_FALSE(Formula::Compare(Operand::Attr("a"), CompareOp::kEq,
                                Operand::Param("p"))
                   ->Compile(*schema)
                   .ok());
}

class VectorizedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
    for (Timestamp t = 1; t <= 3; ++t) {
      ASSERT_TRUE(scenario_->PumpTemperatureStream(t).ok());
    }
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(VectorizedPipelineTest, TryExecuteMatchesScalarEvaluate) {
  PlanPtr plan = Select(Window("temperatures", 3),
                        Formula::Compare(Operand::Attr("temperature"),
                                         CompareOp::kGt,
                                         Operand::Const(Value::Real(-1e9))));
  EvalContext ctx;
  ctx.env = &scenario_->env();
  ctx.streams = &scenario_->streams();
  ctx.instant = 3;
  auto vectorized = vec::TryExecute(*plan, ctx);
  ASSERT_TRUE(vectorized.has_value());
  ASSERT_TRUE(vectorized->ok());

  VecModeGuard guard(false);
  auto scalar = Execute(plan, &scenario_->env(), &scenario_->streams(), 3);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ((*vectorized)->ToTableString(),
            scalar->relation.ToTableString());
}

TEST_F(VectorizedPipelineTest, PipelineCounterAndBatchStatsAdvance) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const bool was_enabled = metrics.enabled();
  metrics.set_enabled(true);
  VecModeGuard guard(true);

  const std::uint64_t pipelines_before =
      metrics.GetCounter("serena.vectorize.pipelines").value();
  const std::uint64_t rows_before =
      metrics.GetCounter("serena.vectorize.rows").value();

  PlanPtr plan = Select(Window("temperatures", 3),
                        Formula::Compare(Operand::Attr("temperature"),
                                         CompareOp::kGt,
                                         Operand::Const(Value::Real(-1e9))));
  ContinuousQuery query("q", plan);
  auto result =
      query.Step(&scenario_->env(), &scenario_->streams(), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());

  EXPECT_GT(metrics.GetCounter("serena.vectorize.pipelines").value(),
            pipelines_before);
  EXPECT_GT(metrics.GetCounter("serena.vectorize.rows").value(), rows_before);
  // Per-operator batch counts reach the stats collector, and EXPLAIN
  // ANALYZE renders them — the visible signal that fusion ran.
  const NodeRuntimeStats* root_stats = query.stats().Find(plan.get());
  ASSERT_NE(root_stats, nullptr);
  EXPECT_GT(root_stats->batches, 0u);
  const std::string rendered = RenderPlanWithStats(
      plan, scenario_->env(), &scenario_->streams(), query.stats());
  EXPECT_NE(rendered.find("batches="), std::string::npos);

  metrics.set_enabled(was_enabled);
}

TEST_F(VectorizedPipelineTest, TracingForcesTheScalarPath) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const bool was_enabled = metrics.enabled();
  metrics.set_enabled(true);
  VecModeGuard guard(true);
  obs::TraceBuffer::Global().set_enabled(true);

  const std::uint64_t pipelines_before =
      metrics.GetCounter("serena.vectorize.pipelines").value();
  PlanPtr plan = Select(Window("temperatures", 3),
                        Formula::Compare(Operand::Attr("temperature"),
                                         CompareOp::kGt,
                                         Operand::Const(Value::Real(-1e9))));
  auto result = Execute(plan, &scenario_->env(), &scenario_->streams(), 3);
  ASSERT_TRUE(result.ok());
  // Causal tracing needs per-operator events, so no pipeline may fuse.
  EXPECT_EQ(metrics.GetCounter("serena.vectorize.pipelines").value(),
            pipelines_before);

  obs::TraceBuffer::Global().set_enabled(false);
  metrics.set_enabled(was_enabled);
}

TEST_F(VectorizedPipelineTest, SmallBatchSizesStreamTheSameResult) {
  VecModeGuard guard(true);
  PlanPtr plan = Project(
      Select(Window("temperatures", 3),
             Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                              Operand::Const(Value::Real(-1e9)))),
      {"location"});
  auto reference = Execute(plan, &scenario_->env(), &scenario_->streams(), 3);
  ASSERT_TRUE(reference.ok());
  for (const std::size_t batch_size : {1u, 2u, 3u, 1024u}) {
    vec::SetBatchSizeForTesting(batch_size);
    auto result = Execute(plan, &scenario_->env(), &scenario_->streams(), 3);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->relation.ToTableString(),
              reference->relation.ToTableString())
        << "batch_size=" << batch_size;
  }
  vec::SetBatchSizeForTesting(std::nullopt);
}

TEST_F(VectorizedPipelineTest, UnbuildablePipelinesReturnNullopt) {
  // Unknown stream: the cursor build fails, TryExecute declines, and the
  // caller falls back to scalar evaluation for the diagnostic.
  PlanPtr plan = Select(Window("no_such_stream", 3),
                        Formula::Compare(Operand::Attr("x"), CompareOp::kEq,
                                         Operand::Const(Value::Int(1))));
  EvalContext ctx;
  ctx.env = &scenario_->env();
  ctx.streams = &scenario_->streams();
  ctx.instant = 3;
  EXPECT_FALSE(vec::TryExecute(*plan, ctx).has_value());

  // Unbound parameter in a selection formula: same decline.
  PlanPtr param_plan =
      Select(Window("temperatures", 3),
             Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                              Operand::Param("threshold")));
  EXPECT_FALSE(vec::TryExecute(*param_plan, ctx).has_value());
}

}  // namespace
}  // namespace serena
