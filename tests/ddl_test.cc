#include "ddl/catalog.h"

#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "ddl/lexer.h"

namespace serena {
namespace {

/// Table 1 of the paper, verbatim (modulo ';' termination).
constexpr const char* kTable1 = R"(
  PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
  PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
  PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
  PROTOTYPE getTemperature( ) : ( temperature REAL );
  SERVICE email IMPLEMENTS sendMessage;
  SERVICE jabber IMPLEMENTS sendMessage;
  SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
  SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
  SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
  SERVICE sensor01 IMPLEMENTS getTemperature;
  SERVICE sensor06 IMPLEMENTS getTemperature;
  SERVICE sensor07 IMPLEMENTS getTemperature;
  SERVICE sensor22 IMPLEMENTS getTemperature;
)";

/// Table 2 of the paper, verbatim.
constexpr const char* kTable2 = R"(
  EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
  ) USING BINDING PATTERNS (
    sendMessage[messenger] ( address, text ) : ( sent )
  );
  EXTENDED RELATION cameras (
    camera SERVICE,
    area STRING,
    quality INTEGER VIRTUAL,
    delay REAL VIRTUAL,
    photo BLOB VIRTUAL
  ) USING BINDING PATTERNS (
    checkPhoto[camera] ( area ) : ( quality, delay ),
    takePhoto[camera] ( area, quality ) : ( photo )
  );
)";

TEST(LexerTest, TokenizesSymbolsAndLiterals) {
  auto tokens =
      Tokenize("select[name != 'O''Brien'](r) := -> 35.5 42").ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsIdent("select"));
  EXPECT_TRUE(tokens[1].IsSymbol("["));
  EXPECT_TRUE(tokens[2].IsIdent("name"));
  EXPECT_TRUE(tokens[3].IsSymbol("!="));
  EXPECT_EQ(tokens[4].type, TokenType::kString);
  EXPECT_EQ(tokens[4].text, "O'Brien");  // '' escape.
}

TEST(LexerTest, CommentsAndLineTracking) {
  auto tokens = Tokenize("a -- comment ( ignored\nb").ValueOrDie();
  ASSERT_EQ(tokens.size(), 3u);  // a, b, end.
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2u);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(DdlParserTest, ParsesTable1Verbatim) {
  auto statements = ParseDdl(kTable1).ValueOrDie();
  ASSERT_EQ(statements.size(), 13u);
  EXPECT_EQ(statements[0].kind, DdlStatement::Kind::kPrototype);
  EXPECT_EQ(statements[0].prototype_name, "sendMessage");
  EXPECT_TRUE(statements[0].active);
  EXPECT_EQ(statements[0].input_attributes.size(), 2u);
  EXPECT_EQ(statements[0].output_attributes.size(), 1u);
  EXPECT_FALSE(statements[1].active);
  EXPECT_EQ(statements[3].input_attributes.size(), 0u);  // getTemperature().
  EXPECT_EQ(statements[4].kind, DdlStatement::Kind::kService);
  EXPECT_EQ(statements[4].service_name, "email");
  EXPECT_EQ(statements[6].implemented_prototypes,
            (std::vector<std::string>{"checkPhoto", "takePhoto"}));
}

TEST(DdlParserTest, ParsesTable2Verbatim) {
  auto statements = ParseDdl(kTable2).ValueOrDie();
  ASSERT_EQ(statements.size(), 2u);
  const DdlStatement& contacts = statements[0];
  EXPECT_EQ(contacts.kind, DdlStatement::Kind::kRelation);
  EXPECT_EQ(contacts.relation_name, "contacts");
  ASSERT_EQ(contacts.attributes.size(), 5u);
  EXPECT_TRUE(contacts.attributes[2].is_virtual());  // text.
  EXPECT_EQ(contacts.attributes[3].type, DataType::kService);
  ASSERT_EQ(contacts.binding_patterns.size(), 1u);
  EXPECT_EQ(contacts.binding_patterns[0].prototype, "sendMessage");
  EXPECT_EQ(contacts.binding_patterns[0].service_attribute, "messenger");

  const DdlStatement& cameras = statements[1];
  ASSERT_EQ(cameras.binding_patterns.size(), 2u);
  EXPECT_EQ(cameras.binding_patterns[1].inputs,
            (std::vector<std::string>{"area", "quality"}));
}

TEST(DdlParserTest, SyntaxErrorsAreReported) {
  EXPECT_FALSE(ParseDdl("PROTOTYPE ;").ok());
  EXPECT_FALSE(ParseDdl("PROTOTYPE p(a) : (b BOOLEAN);").ok());  // No type.
  EXPECT_FALSE(ParseDdl("EXTENDED TABLE t (a STRING);").ok());
  EXPECT_FALSE(ParseDdl("SERVICE s;").ok());
  EXPECT_FALSE(ParseDdl("PROTOTYPE p() : (x STRING)").ok());  // Missing ';'.
}

TEST(CatalogTest, ExecutesTables1And2EndToEnd) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_EQ(catalog.Execute(kTable1), Status::OK());
  ASSERT_EQ(catalog.Execute(kTable2), Status::OK());

  // Prototypes are in the catalog.
  EXPECT_EQ(env.PrototypeNames(),
            (std::vector<std::string>{"checkPhoto", "getTemperature",
                                      "sendMessage", "takePhoto"}));
  EXPECT_TRUE(env.GetPrototype("sendMessage").ValueOrDie()->active());

  // Services registered (synthetic implementations by default).
  EXPECT_EQ(env.registry().size(), 9u);
  EXPECT_EQ(env.registry().ServicesImplementing("getTemperature").size(),
            4u);

  // Relations exist with the right partitions.
  const XRelation* contacts = env.GetRelation("contacts").ValueOrDie();
  EXPECT_EQ(contacts->schema().VirtualNames(),
            (std::vector<std::string>{"text", "sent"}));
  EXPECT_EQ(contacts->schema().binding_patterns().size(), 1u);
  const XRelation* cameras = env.GetRelation("cameras").ValueOrDie();
  EXPECT_EQ(cameras->schema().binding_patterns().size(), 2u);
}

TEST(CatalogTest, SyntheticServicesAnswerQueries) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute(kTable1).ok());
  ASSERT_TRUE(catalog.Execute(kTable2).ok());
  XRelation* cameras = env.GetMutableRelation("cameras").ValueOrDie();
  ASSERT_TRUE(cameras
                  ->Insert(Tuple{Value::String("camera01"),
                                 Value::String("office")})
                  .ok());

  // invoke[checkPhoto](cameras) works against the synthetic camera01.
  const BindingPattern* bp =
      cameras->schema().FindBindingPattern("checkPhoto");
  ASSERT_NE(bp, nullptr);
  InvokeOptions options;
  options.instant = 3;
  XRelation checked =
      Invoke(*cameras, *bp, &env.registry(), options).ValueOrDie();
  ASSERT_EQ(checked.size(), 1u);
  EXPECT_TRUE(checked.schema().IsReal("quality"));
  // Deterministic at an instant.
  XRelation again =
      Invoke(*cameras, *bp, &env.registry(), options).ValueOrDie();
  EXPECT_TRUE(checked.SetEquals(again));
}

TEST(CatalogTest, StreamDeclarationCreatesXDRelation) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog
                  .Execute("EXTENDED STREAM temperatures (location STRING, "
                           "temperature REAL);")
                  .ok());
  EXPECT_TRUE(streams.HasStream("temperatures"));
}

TEST(CatalogTest, ServiceWithUnknownPrototypeFails) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  EXPECT_EQ(catalog.Execute("SERVICE x IMPLEMENTS nope;").code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, EmptyOutputPrototypeIsSemanticError) {
  // Parses fine, but violates the Def. 2 requirement Output_ψ ≠ ∅.
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  EXPECT_EQ(catalog.Execute("PROTOTYPE p(a STRING) : ();").code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, BindingPatternListMismatchFails) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog
                  .Execute("PROTOTYPE p(a STRING) : (b BOOLEAN);")
                  .ok());
  // Declared inputs don't match the prototype.
  const Status status = catalog.Execute(
      "EXTENDED RELATION r (a STRING, svc SERVICE, b BOOLEAN VIRTUAL) "
      "USING BINDING PATTERNS ( p[svc](wrong) : (b) );");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, InsertIntoPopulatesRelation) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute(kTable1).ok());
  ASSERT_TRUE(catalog.Execute(kTable2).ok());
  ASSERT_TRUE(catalog
                  .Execute("INSERT INTO contacts VALUES "
                           "('Nicolas', 'nicolas@elysee.fr', 'email'), "
                           "('Carla', 'carla@elysee.fr', 'email');")
                  .ok());
  const XRelation* contacts = env.GetRelation("contacts").ValueOrDie();
  EXPECT_EQ(contacts->size(), 2u);
  // Values land on the real schema in order.
  EXPECT_EQ(contacts->ProjectValue(contacts->Sorted()[0], "name")
                .ValueOrDie(),
            Value::String("Carla"));
}

TEST(CatalogTest, InsertTypedLiterals) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog
                  .Execute("EXTENDED RELATION t (i INTEGER, r REAL, "
                           "b BOOLEAN, s STRING);")
                  .ok());
  ASSERT_TRUE(
      catalog.Execute("INSERT INTO t VALUES (-3, 35.5, true, 'x');").ok());
  const XRelation* t = env.GetRelation("t").ValueOrDie();
  const Tuple& row = t->tuples()[0];
  EXPECT_EQ(row[0], Value::Int(-3));
  EXPECT_EQ(row[1], Value::Real(35.5));
  EXPECT_EQ(row[2], Value::Bool(true));
  EXPECT_EQ(row[3], Value::String("x"));
}

TEST(CatalogTest, InsertErrors) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute("EXTENDED RELATION t (i INTEGER);").ok());
  // Wrong arity.
  EXPECT_FALSE(catalog.Execute("INSERT INTO t VALUES (1, 2);").ok());
  // Type mismatch.
  EXPECT_FALSE(catalog.Execute("INSERT INTO t VALUES ('abc');").ok());
  // Unknown relation.
  EXPECT_EQ(catalog.Execute("INSERT INTO ghost VALUES (1);").code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, DeleteFromWithCondition) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute(kTable1).ok());
  ASSERT_TRUE(catalog.Execute(kTable2).ok());
  ASSERT_TRUE(catalog
                  .Execute("INSERT INTO contacts VALUES "
                           "('Nicolas', 'n@x', 'email'), "
                           "('Carla', 'c@x', 'email'), "
                           "('Francois', 'f@x', 'jabber');")
                  .ok());
  ASSERT_TRUE(
      catalog.Execute("DELETE FROM contacts WHERE messenger = 'email';")
          .ok());
  const XRelation* contacts = env.GetRelation("contacts").ValueOrDie();
  ASSERT_EQ(contacts->size(), 1u);
  EXPECT_EQ(contacts->ProjectValue(contacts->tuples()[0], "name")
                .ValueOrDie(),
            Value::String("Francois"));
  // WHERE over a virtual attribute is rejected.
  EXPECT_FALSE(
      catalog.Execute("DELETE FROM contacts WHERE text = 'x';").ok());
  // Unconditional DELETE clears the relation.
  ASSERT_TRUE(catalog.Execute("DELETE FROM contacts;").ok());
  EXPECT_TRUE(env.GetRelation("contacts").ValueOrDie()->empty());
}

TEST(CatalogTest, DropRelationAndStream) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog
                  .Execute("EXTENDED RELATION r (a INTEGER); "
                           "EXTENDED STREAM s (b REAL);")
                  .ok());
  ASSERT_TRUE(catalog.Execute("DROP RELATION r;").ok());
  EXPECT_FALSE(env.HasRelation("r"));
  ASSERT_TRUE(catalog.Execute("DROP STREAM s;").ok());
  EXPECT_FALSE(streams.HasStream("s"));
  EXPECT_EQ(catalog.Execute("DROP RELATION r;").code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(catalog.Execute("DROP SOMETHING x;").ok());
}

TEST(CatalogTest, DeleteWhereStringRoundTripsQuotes) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute("EXTENDED RELATION t (s STRING);").ok());
  ASSERT_TRUE(
      catalog.Execute("INSERT INTO t VALUES ('O''Brien'), ('x');").ok());
  ASSERT_TRUE(
      catalog.Execute("DELETE FROM t WHERE s = 'O''Brien';").ok());
  EXPECT_EQ(env.GetRelation("t").ValueOrDie()->size(), 1u);
}

TEST(CatalogTest, DuplicateDeclarationsFail) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute("PROTOTYPE p() : (x INTEGER);").ok());
  EXPECT_EQ(catalog.Execute("PROTOTYPE p() : (x INTEGER);").code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace serena
