// Tests for the analyzer-driven semantic rewrite pass (src/rewrite):
// golden EXPLAIN before/after snapshots per rule, the Def. 9 equivalence
// of rewritten plans (byte-identical results *and* action sets), and the
// strictly-fewer-service-calls payoff of dropping dead invocations.

#include "rewrite/semantic.h"

#include <gtest/gtest.h>

#include <string>

#include "algebra/explain.h"
#include "ddl/algebra_parser.h"
#include "env/scenario.h"
#include "obs/metrics.h"

namespace serena {
namespace {

class SemanticRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  PlanPtr Parse(const std::string& algebra) {
    return ParseAlgebra(algebra).ValueOrDie();
  }

  SemanticRewriteResult Optimize(const std::string& algebra) {
    return SemanticOptimize(Parse(algebra), scenario_->env(),
                            &scenario_->streams())
        .MoveValueOrDie();
  }

  std::string Explain(const PlanPtr& plan) {
    return ExplainPlan(plan, scenario_->env(), &scenario_->streams());
  }

  std::string Explain(const std::string& algebra) {
    return Explain(Parse(algebra));
  }

  QueryResult Run(const PlanPtr& plan) {
    return Execute(plan, &scenario_->env(), &scenario_->streams())
        .MoveValueOrDie();
  }

  std::uint64_t PhysicalInvocations() {
    return scenario_->env().registry().stats().physical_invocations;
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

// --- Rule 1: drop-dead-invoke (the SER021 fact) ----------------------------

TEST_F(SemanticRewriteTest, DeadPassiveInvokeDroppedWithProof) {
  const auto result = Optimize("project[area](invoke[checkPhoto](cameras))");
  ASSERT_TRUE(result.changed());
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].rule, "drop-dead-invoke");
  EXPECT_EQ(result.steps[0].node, "invoke[checkPhoto]");
  // The EXPLAIN-level equivalence argument names the Def. 8/Def. 9 facts.
  EXPECT_NE(result.steps[0].proof.find("passive"), std::string::npos);
  EXPECT_NE(result.steps[0].proof.find("Def. 9"), std::string::npos);
  // Golden snapshot: the rewritten tree is exactly the plan without β.
  EXPECT_EQ(Explain(result.plan), Explain("project[area](cameras)"));
  EXPECT_NE(RenderSemanticSteps(result.steps).find("drop-dead-invoke @"),
            std::string::npos);
}

TEST_F(SemanticRewriteTest, DeadInvokeEquivalentResultsStrictlyFewerCalls) {
  const PlanPtr original =
      Parse("project[area](invoke[checkPhoto](cameras))");
  const auto rewritten =
      SemanticOptimize(original, scenario_->env(), &scenario_->streams())
          .MoveValueOrDie();
  ASSERT_TRUE(rewritten.changed());

  scenario_->env().registry().ResetStats();
  const QueryResult before = Run(original);
  const std::uint64_t calls_original = PhysicalInvocations();
  scenario_->env().registry().ResetStats();
  const QueryResult after = Run(rewritten.plan);
  const std::uint64_t calls_rewritten = PhysicalInvocations();

  // Def. 9 equivalence, byte for byte: same tuples, same action set.
  EXPECT_EQ(before.relation.ToTableString(), after.relation.ToTableString());
  EXPECT_EQ(before.actions.ToString(), after.actions.ToString());
  // One checkPhoto per camera gone entirely.
  EXPECT_EQ(calls_original, 3u);
  EXPECT_EQ(calls_rewritten, 0u);
}

TEST_F(SemanticRewriteTest, ActiveInvokeIsNeverDropped) {
  // takePhoto's photo output is dropped by the projection. While the
  // prototype is passive (the default), the dead β goes — and once it
  // does, checkPhoto's quality output has no consumer left either.
  const std::string algebra =
      "project[area](invoke[takePhoto](invoke[checkPhoto](cameras)))";
  EXPECT_TRUE(Optimize(algebra).changed());

  // As a side-effecting prototype (§3.3's design choice) its action set
  // is observable and the node must stay — which also keeps checkPhoto
  // alive, since takePhoto reads the quality it realizes.
  TemperatureScenarioOptions options;
  options.take_photo_active = true;
  auto active = TemperatureScenario::Build(options).MoveValueOrDie();
  const PlanPtr plan = ParseAlgebra(algebra).ValueOrDie();
  const auto result =
      SemanticOptimize(plan, active->env(), &active->streams())
          .MoveValueOrDie();
  EXPECT_FALSE(result.changed());
  EXPECT_EQ(result.plan, plan);
}

TEST_F(SemanticRewriteTest, UsedInvokeOutputKeepsTheInvoke) {
  // quality is read by the selection above: checkPhoto is live.
  const auto result = Optimize(
      "project[area](select[quality >= 5](invoke[checkPhoto](cameras)))");
  for (const SemanticRewriteStep& step : result.steps) {
    EXPECT_NE(step.rule, "drop-dead-invoke");
  }
}

// --- Rule 2: narrow-projection (the SER052 analysis) -----------------------

TEST_F(SemanticRewriteTest, ProjectionNarrowedToConsumedAttributes) {
  const auto result = Optimize(
      "project[location](project[location, temperature]"
      "(window[1](temperatures)))");
  ASSERT_TRUE(result.changed());
  ASSERT_EQ(result.steps.size(), 2u);
  // The inner π narrows to what the outer one consumes; the outer π then
  // collapses to the identity and disappears.
  EXPECT_EQ(result.steps[0].rule, "narrow-projection");
  EXPECT_NE(result.steps[0].proof.find("temperature"), std::string::npos);
  EXPECT_EQ(result.steps[1].rule, "drop-identity-projection");
  EXPECT_EQ(Explain(result.plan),
            Explain("project[location](window[1](temperatures))"));
}

TEST_F(SemanticRewriteTest, NarrowingBlockedBelowAggregate) {
  // count observes cardinality: merging tuples that differ only on a
  // dropped attribute would change the answer, so π must stay as-is.
  const PlanPtr plan = Aggregate(
      Project(Scan("contacts"), {"name", "address"}),
      /*group_by=*/{"name"},
      {AggregateSpec{AggregateFn::kCount, "", "n"}});
  const auto result =
      SemanticOptimize(plan, scenario_->env(), &scenario_->streams())
          .MoveValueOrDie();
  EXPECT_FALSE(result.changed());
  EXPECT_EQ(result.plan, plan);
}

// --- Rule 3: drop-identity-projection --------------------------------------

TEST_F(SemanticRewriteTest, IdentityProjectionRemoved) {
  const auto result = Optimize(
      "project[name, address, text, messenger, sent](contacts)");
  ASSERT_TRUE(result.changed());
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].rule, "drop-identity-projection");
  EXPECT_EQ(Explain(result.plan), Explain("contacts"));
}

// --- Guards ----------------------------------------------------------------

TEST_F(SemanticRewriteTest, IllFormedPlansAreReturnedUntouched) {
  const PlanPtr plan = Parse("project[area](invoke[checkPhoto](ghost))");
  const auto result =
      SemanticOptimize(plan, scenario_->env(), &scenario_->streams())
          .MoveValueOrDie();
  EXPECT_FALSE(result.changed());
  EXPECT_TRUE(result.steps.empty());
  EXPECT_EQ(result.plan, plan);
}

TEST_F(SemanticRewriteTest, UnchangedPlansReportNoSteps) {
  const auto result = Optimize("select[area = 'office'](cameras)");
  EXPECT_FALSE(result.changed());
  EXPECT_FALSE(result.reverted);
  EXPECT_TRUE(RenderSemanticSteps(result.steps).empty());
}

TEST_F(SemanticRewriteTest, RewriteCountersIncrement) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  const std::uint64_t dead_before =
      metrics.GetCounter("serena.rewrite.semantic.dead_invokes").value();
  const std::uint64_t narrowed_before =
      metrics.GetCounter("serena.rewrite.semantic.narrowed_projections")
          .value();
  (void)Optimize("project[area](invoke[checkPhoto](cameras))");
  (void)Optimize(
      "project[location](project[location, temperature]"
      "(window[1](temperatures)))");
  EXPECT_EQ(
      metrics.GetCounter("serena.rewrite.semantic.dead_invokes").value(),
      dead_before + 1);
  EXPECT_EQ(metrics.GetCounter("serena.rewrite.semantic.narrowed_projections")
                .value(),
            narrowed_before + 1);
}

// --- Def. 9 equivalence over the paper's walkthrough queries ---------------

TEST_F(SemanticRewriteTest, WalkthroughQueriesStayEquivalent) {
  // Table 4's canonical queries (plus a dead-invoke variant) rewritten
  // and unrewritten must produce byte-identical relations and action
  // sets. Q1 messages contacts — equivalence covers side effects too.
  const std::vector<PlanPtr> plans = {
      scenario_->Q1(),
      scenario_->Q2(),
      scenario_->Q2Prime(),
      Parse("project[area](invoke[checkPhoto](cameras))"),
      Parse("project[name, address](project[name, address, text]"
            "(contacts))"),
  };
  for (const PlanPtr& plan : plans) {
    const auto rewritten =
        SemanticOptimize(plan, scenario_->env(), &scenario_->streams())
            .MoveValueOrDie();
    EXPECT_FALSE(rewritten.reverted);
    scenario_->ClearOutboxes();
    const QueryResult before = Run(plan);
    scenario_->ClearOutboxes();
    const QueryResult after = Run(rewritten.plan);
    EXPECT_EQ(before.relation.ToTableString(),
              after.relation.ToTableString())
        << plan->ToString();
    EXPECT_EQ(before.actions.ToString(), after.actions.ToString())
        << plan->ToString();
  }
}

}  // namespace
}  // namespace serena
