#include "pems/erm.h"

#include <gtest/gtest.h>

#include "env/prototypes.h"
#include "env/sim_services.h"

namespace serena {
namespace {

SimulatedNetwork::Options ZeroLatency() {
  SimulatedNetwork::Options options;
  options.min_latency = 0;
  options.max_latency = 0;
  return options;
}

TEST(AnnouncementCodecTest, RoundTrip) {
  const std::string payload =
      EncodeAnnouncement("camera01", {"checkPhoto", "takePhoto"});
  EXPECT_EQ(payload, "camera01|checkPhoto,takePhoto");
  auto decoded = DecodeAnnouncement(payload).ValueOrDie();
  EXPECT_EQ(decoded.first, "camera01");
  EXPECT_EQ(decoded.second,
            (std::vector<std::string>{"checkPhoto", "takePhoto"}));
  // No prototypes.
  auto empty = DecodeAnnouncement("ref|").ValueOrDie();
  EXPECT_TRUE(empty.second.empty());
  // Malformed.
  EXPECT_FALSE(DecodeAnnouncement("no-bar").ok());
  EXPECT_FALSE(DecodeAnnouncement("|protos").ok());
}

class ErmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<SimulatedNetwork>(ZeroLatency());
    ASSERT_TRUE(env_.AddPrototype(MakeGetTemperaturePrototype()).ok());
    core_ = CoreErm::Create(network_.get(), &env_).MoveValueOrDie();
    local_ = LocalErm::Create("node-a", network_.get()).MoveValueOrDie();
    core_->TrackLocalErm(local_);
  }

  Environment env_;
  std::unique_ptr<SimulatedNetwork> network_;
  std::unique_ptr<CoreErm> core_;
  std::shared_ptr<LocalErm> local_;
};

TEST_F(ErmTest, HostAnnounceDiscover) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  EXPECT_EQ(local_->HostedRefs(), std::vector<std::string>{"s1"});
  EXPECT_FALSE(env_.registry().Contains("s1"));
  network_->DeliverDue(0);
  EXPECT_TRUE(env_.registry().Contains("s1"));
  EXPECT_EQ(core_->services_discovered(), 1u);
}

TEST_F(ErmTest, ReannouncementsAreIdempotent) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  network_->DeliverDue(0);
  local_->AnnounceAll(1);  // Periodic alive message.
  local_->AnnounceAll(2);
  network_->DeliverDue(2);
  EXPECT_EQ(core_->services_discovered(), 1u);
  EXPECT_EQ(env_.registry().size(), 1u);
}

TEST_F(ErmTest, ByebyeUnregisters) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  network_->DeliverDue(0);
  ASSERT_TRUE(local_->Evict(1, "s1").ok());
  network_->DeliverDue(1);
  EXPECT_FALSE(env_.registry().Contains("s1"));
  EXPECT_EQ(core_->services_lost(), 1u);
  EXPECT_FALSE(local_->Evict(2, "s1").ok());
}

TEST_F(ErmTest, ProxyForwardsInvocationAndChargesRoundTrip) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  network_->DeliverDue(0);
  auto proto = env_.GetPrototype("getTemperature").ValueOrDie();
  auto result = env_.registry().Invoke(*proto, "s1", Tuple(), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->size(), 1u);
  EXPECT_EQ(network_->stats().invocation_round_trips, 1u);
}

TEST_F(ErmTest, ProxyFailsUnavailableAfterLocalEviction) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  network_->DeliverDue(0);
  // Device crashes: evicted locally; the byebye is NOT yet delivered, so
  // the core registry still has the proxy.
  ASSERT_TRUE(local_->Evict(1, "s1").ok());
  auto proto = env_.GetPrototype("getTemperature").ValueOrDie();
  EXPECT_EQ(env_.registry().Invoke(*proto, "s1", Tuple(), 4).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(ErmTest, AnnouncementWithUnknownPrototypesIsIgnored) {
  // A service whose prototypes the environment does not declare cannot be
  // integrated (no way to type its invocations).
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<MessengerService>(
                                "email", MessengerService::Kind::kEmail))
                  .ok());
  network_->DeliverDue(0);
  EXPECT_FALSE(env_.registry().Contains("email"));
  EXPECT_EQ(core_->services_discovered(), 0u);
}

TEST_F(ErmTest, AnnouncementFromUntrackedErmIsIgnored) {
  auto rogue = LocalErm::Create("rogue", network_.get()).MoveValueOrDie();
  // Not tracked by the core ERM.
  ASSERT_TRUE(rogue
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "sX", 20.0, 1))
                  .ok());
  network_->DeliverDue(0);
  EXPECT_FALSE(env_.registry().Contains("sX"));
}

TEST_F(ErmTest, DuplicateHostRejected) {
  ASSERT_TRUE(local_
                  ->Host(0, std::make_shared<TemperatureSensorService>(
                                "s1", 20.0, 1))
                  .ok());
  EXPECT_EQ(local_
                ->Host(0, std::make_shared<TemperatureSensorService>(
                              "s1", 21.0, 2))
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace serena
