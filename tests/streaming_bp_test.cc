#include <gtest/gtest.h>

#include "ddl/catalog.h"
#include "service/lambda_service.h"
#include "stream/executor.h"

namespace serena {
namespace {

/// Tests for streaming binding patterns — the §7 future-work extension:
/// a prototype tagged STREAMING whose invocations at instant τ return the
/// output tuples the service's stream carries at τ. Under continuous
/// evaluation the invocation operator re-invokes such patterns every
/// instant for every standing tuple (unlike the §4.2 delta behaviour for
/// plain patterns).
class StreamingBpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pollItems(feed) : (item INTEGER) STREAMING - one fresh item per
    // instant per feed.
    poll_ = Prototype::Create(
                "pollItems",
                RelationSchema::Create({{"feed", DataType::kString}})
                    .ValueOrDie(),
                RelationSchema::Create({{"item", DataType::kInt}})
                    .ValueOrDie(),
                /*active=*/false, /*streaming=*/true)
                .ValueOrDie();
    plain_ = Prototype::Create(
                 "readOnce",
                 RelationSchema::Create({{"feed", DataType::kString}})
                     .ValueOrDie(),
                 RelationSchema::Create({{"snapshot", DataType::kInt}})
                     .ValueOrDie(),
                 /*active=*/false)
                 .ValueOrDie();
    ASSERT_TRUE(env_.AddPrototype(poll_).ok());
    ASSERT_TRUE(env_.AddPrototype(plain_).ok());

    auto svc = std::make_shared<LambdaService>("wire");
    svc->AddMethod(poll_, [this](const Tuple&, Timestamp now) {
      ++physical_polls_;
      return Result<std::vector<Tuple>>(std::vector<Tuple>{
          Tuple{Value::Int(static_cast<std::int64_t>(now))}});
    });
    svc->AddMethod(plain_, [this](const Tuple&, Timestamp now) {
      ++physical_reads_;
      return Result<std::vector<Tuple>>(std::vector<Tuple>{
          Tuple{Value::Int(static_cast<std::int64_t>(now))}});
    });
    ASSERT_TRUE(env_.registry().Register(std::move(svc)).ok());

    auto schema =
        ExtendedSchema::Create(
            "feeds",
            {{"feed", DataType::kService},
             {"item", DataType::kInt, AttributeKind::kVirtual},
             {"snapshot", DataType::kInt, AttributeKind::kVirtual}},
            {BindingPattern(poll_, "feed"), BindingPattern(plain_, "feed")})
            .ValueOrDie();
    ASSERT_TRUE(env_.AddRelation(schema).ok());
    ASSERT_TRUE(env_.GetMutableRelation("feeds")
                    .ValueOrDie()
                    ->Insert(Tuple{Value::String("wire")})
                    .ok());
  }

  Environment env_;
  StreamStore streams_;
  PrototypePtr poll_;
  PrototypePtr plain_;
  int physical_polls_ = 0;
  int physical_reads_ = 0;
};

TEST_F(StreamingBpTest, DdlParsesStreamingFlag) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(
      catalog
          .Execute(
              "PROTOTYPE pollItems(feed STRING) : (item INTEGER) STREAMING;")
          .ok());
  auto proto = env.GetPrototype("pollItems").ValueOrDie();
  EXPECT_TRUE(proto->streaming());
  EXPECT_FALSE(proto->active());
  EXPECT_NE(proto->ToString().find("STREAMING"), std::string::npos);
  // Flags combine.
  ASSERT_TRUE(catalog
                  .Execute("PROTOTYPE push(feed STRING) : (ok BOOLEAN) "
                           "ACTIVE STREAMING;")
                  .ok());
  EXPECT_TRUE(env.GetPrototype("push").ValueOrDie()->active());
  EXPECT_TRUE(env.GetPrototype("push").ValueOrDie()->streaming());
}

TEST_F(StreamingBpTest, ContinuousInvokeReinvokesEveryInstant) {
  ContinuousExecutor executor(&env_, &streams_);
  auto streaming_query = std::make_shared<ContinuousQuery>(
      "poll", Invoke(Scan("feeds"), "pollItems"));
  auto plain_query = std::make_shared<ContinuousQuery>(
      "snap", Invoke(Scan("feeds"), "readOnce"));
  std::vector<std::int64_t> polled_items;
  streaming_query->set_sink([&](Timestamp, const XRelation& r) {
    for (const Tuple& t : r.tuples()) {
      polled_items.push_back(
          r.ProjectValue(t, "item").ValueOrDie().int_value());
    }
  });
  ASSERT_TRUE(executor.Register(streaming_query).ok());
  ASSERT_TRUE(executor.Register(plain_query).ok());
  executor.Run(4);

  // Streaming pattern: one physical poll per instant, values track τ.
  EXPECT_EQ(physical_polls_, 4);
  EXPECT_EQ(polled_items, (std::vector<std::int64_t>{1, 2, 3, 4}));
  // Plain pattern (§4.2 delta behaviour): only the first instant's fresh
  // tuple is invoked; standing tuples reuse the previous output.
  EXPECT_EQ(physical_reads_, 1);
}

TEST_F(StreamingBpTest, OneShotBehaviourUnchanged) {
  QueryResult a =
      Execute(Invoke(Scan("feeds"), "pollItems"), &env_, &streams_, 7)
          .ValueOrDie();
  ASSERT_EQ(a.relation.size(), 1u);
  EXPECT_EQ(a.relation.ProjectValue(a.relation.tuples()[0], "item")
                .ValueOrDie(),
            Value::Int(7));
  // Still deterministic within an instant (registry memo).
  QueryResult b =
      Execute(Invoke(Scan("feeds"), "pollItems"), &env_, &streams_, 7)
          .ValueOrDie();
  EXPECT_TRUE(a.relation.SetEquals(b.relation));
}

TEST_F(StreamingBpTest, FeedsAlgebraStreamHomogeneously) {
  // The point of the extension: the polled slice composes with the rest
  // of the algebra like any X-Relation - e.g. feed a stream via the
  // Streaming operator.
  ContinuousExecutor executor(&env_, &streams_);
  auto query = std::make_shared<ContinuousQuery>(
      "delta",
      Streaming(Project(Invoke(Scan("feeds"), "pollItems"), {"feed", "item"}),
                StreamingType::kInsertion));
  std::size_t total = 0;
  query->set_sink(
      [&](Timestamp, const XRelation& r) { total += r.size(); });
  ASSERT_TRUE(executor.Register(query).ok());
  executor.Run(5);
  EXPECT_EQ(total, 5u);  // One fresh delta tuple per instant.
}

}  // namespace
}  // namespace serena
