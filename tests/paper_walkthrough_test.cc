// A single integration test file that walks the paper's numbered examples
// in order — Example 1 through Example 8 — asserting each claim the paper
// makes against this implementation. Reading it side by side with the
// paper is the fastest way to audit the reproduction.

#include <gtest/gtest.h>

#include "ddl/algebra_parser.h"
#include "ddl/catalog.h"
#include "env/scenario.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"
#include "stream/executor.h"

namespace serena {
namespace {

class PaperWalkthroughTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }

  std::unique_ptr<TemperatureScenario> scenario_;
};

// --------------------------------------------------------------------------
// Example 1 (§2.1): 4 prototypes, 9 services; sendMessage is active, the
// three others passive.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example1PrototypesAndServices) {
  EXPECT_EQ(env().PrototypeNames(),
            (std::vector<std::string>{"checkPhoto", "getTemperature",
                                      "sendMessage", "takePhoto"}));
  EXPECT_TRUE(env().GetPrototype("sendMessage").ValueOrDie()->active());
  for (const char* passive : {"checkPhoto", "takePhoto", "getTemperature"}) {
    EXPECT_FALSE(env().GetPrototype(passive).ValueOrDie()->active())
        << passive;
  }
  // 9 services: email, jabber (+sms in our build), 3 cameras, 4 sensors.
  EXPECT_EQ(env().registry().ServicesImplementing("sendMessage").size(), 3u);
  EXPECT_EQ(env().registry().ServicesImplementing("checkPhoto").size(), 3u);
  EXPECT_EQ(env().registry().ServicesImplementing("getTemperature").size(),
            4u);
  EXPECT_TRUE(env().registry().Contains("camera01"));
  EXPECT_TRUE(env().registry().Contains("webcam07"));
  EXPECT_TRUE(env().registry().Contains("sensor22"));
}

// --------------------------------------------------------------------------
// Example 2 / Table 2 (§2.2): the contacts and cameras X-Relations.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example2XRelationSchemas) {
  const ExtendedSchema& contacts =
      env().GetRelation("contacts").ValueOrDie()->schema();
  EXPECT_EQ(contacts.AllNames(),
            (std::vector<std::string>{"name", "address", "text", "messenger",
                                      "sent"}));
  ASSERT_EQ(contacts.binding_patterns().size(), 1u);
  EXPECT_EQ(contacts.binding_patterns()[0].ToString(),
            "sendMessage[messenger](address, text) : (sent)");

  const ExtendedSchema& cameras =
      env().GetRelation("cameras").ValueOrDie()->schema();
  EXPECT_EQ(cameras.VirtualNames(),
            (std::vector<std::string>{"quality", "delay", "photo"}));
  EXPECT_EQ(cameras.binding_patterns().size(), 2u);
}

// --------------------------------------------------------------------------
// Example 3 (§2.3.1): prototypes(ω1) = {sendMessage},
// prototypes(ω3/camera01) = {checkPhoto, takePhoto}.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example3ServicePrototypeSets) {
  auto email = env().registry().Lookup("email").ValueOrDie();
  std::vector<std::string> email_protos;
  for (const auto& p : email->prototypes()) {
    email_protos.push_back(p->name());
  }
  // Our messengers also carry the §5.2 photo extension when enabled;
  // with defaults they implement sendMessage (+sendPhotoMessage).
  EXPECT_TRUE(email->Implements("sendMessage"));

  auto camera01 = env().registry().Lookup("camera01").ValueOrDie();
  EXPECT_TRUE(camera01->Implements("checkPhoto"));
  EXPECT_TRUE(camera01->Implements("takePhoto"));
  EXPECT_FALSE(camera01->Implements("sendMessage"));
}

// --------------------------------------------------------------------------
// Example 4 (§2.3.2): tuples over realSchema(Contact); δ arithmetic;
// t[messenger] = email for Nicolas's tuple.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example4TupleProjection) {
  const XRelation* contacts = env().GetRelation("contacts").ValueOrDie();
  ASSERT_EQ(contacts->size(), 3u);
  for (const Tuple& t : contacts->tuples()) {
    EXPECT_EQ(t.size(), 3u);  // Elements of D^3 (3 real attributes).
    if (contacts->ProjectValue(t, "name").ValueOrDie() ==
        Value::String("Nicolas")) {
      EXPECT_EQ(contacts->ProjectValue(t, "messenger").ValueOrDie(),
                Value::String("email"));
      EXPECT_EQ(contacts->ProjectValue(t, "address").ValueOrDie(),
                Value::String("nicolas@elysee.fr"));
    }
  }
  EXPECT_EQ(contacts->schema().CoordinateOf("messenger"), std::size_t{2});
}

// --------------------------------------------------------------------------
// Example 5 / Table 4 (§3.1.4): Q1 sends "Bonjour!" to everyone except
// Carla; Q2 photographs 'office' with quality >= 5.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example5QueriesExecute) {
  QueryResult q1 = Execute(scenario_->Q1(), &env(), &streams(), 1)
                       .ValueOrDie();
  EXPECT_EQ(q1.relation.size(), 2u);
  for (const SentMessage& m : scenario_->AllSentMessages()) {
    EXPECT_NE(m.address, "carla@elysee.fr");
    EXPECT_EQ(m.text, "Bonjour!");
  }

  QueryResult q2 = Execute(scenario_->Q2(), &env(), &streams(), 2)
                       .ValueOrDie();
  EXPECT_EQ(q2.relation.schema().AllNames(),
            (std::vector<std::string>{"photo"}));
  // The office camera may or may not clear quality >= 5 at this instant;
  // what must hold: photos only from office, count <= office cameras.
  EXPECT_LE(q2.relation.size(), 1u);
}

// --------------------------------------------------------------------------
// Example 6 (§3.2): the action sets of Q1 and Q1', verbatim.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example6ActionSets) {
  ActionSet q1 = ComputeActionSet(scenario_->Q1(), &env(), &streams(), 3)
                     .ValueOrDie();
  ActionSet q1p =
      ComputeActionSet(scenario_->Q1Prime(), &env(), &streams(), 3)
          .ValueOrDie();
  EXPECT_EQ(q1.size(), 2u);
  EXPECT_EQ(q1p.size(), 3u);
  const Action carla{"sendMessage", "messenger", "email",
                     Tuple{Value::String("carla@elysee.fr"),
                           Value::String("Bonjour!")}};
  EXPECT_EQ(q1.actions().count(carla), 0u);
  EXPECT_EQ(q1p.actions().count(carla), 1u);
  // All of Q1's actions also appear in Q1' (it is the superset).
  for (const Action& action : q1.actions()) {
    EXPECT_EQ(q1p.actions().count(action), 1u);
  }
}

// --------------------------------------------------------------------------
// Example 7 (§3.2): Q1 !≡ Q1'; Q2 ≡ Q2' when photo prototypes passive.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example7Equivalences) {
  EquivalenceReport q1_report =
      CheckEquivalence(scenario_->Q1(), scenario_->Q1Prime(), &env(),
                       &streams(), 4)
          .ValueOrDie();
  EXPECT_TRUE(q1_report.same_result);
  EXPECT_FALSE(q1_report.same_actions);
  EXPECT_FALSE(q1_report.equivalent());

  EquivalenceReport q2_report =
      CheckEquivalence(scenario_->Q2(), scenario_->Q2Prime(), &env(),
                       &streams(), 5)
          .ValueOrDie();
  EXPECT_TRUE(q2_report.equivalent());
}

// --------------------------------------------------------------------------
// Table 5 (§3.3): the rewriting direction Q2' -> Q2 is what the optimizer
// finds; the active sendMessage blocks the analogous Q1' -> Q1 rewrite.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Table5RewritingDirections) {
  Rewriter rewriter(&env(), &streams());
  PlanPtr q2_opt = rewriter.Optimize(scenario_->Q2Prime()).ValueOrDie();
  // The area selection ends up below checkPhoto.
  const std::string repr = q2_opt->ToString();
  EXPECT_GT(repr.find("area = 'office'"), repr.find("invoke[checkPhoto]"));

  PlanPtr q1p_opt = rewriter.Optimize(scenario_->Q1Prime()).ValueOrDie();
  EXPECT_EQ(q1p_opt->ToString(), scenario_->Q1Prime()->ToString());
}

// --------------------------------------------------------------------------
// Example 8 (§4): continuous Q3/Q4 over the temperatures stream.
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Example8ContinuousQueries) {
  ContinuousExecutor executor(&env(), &streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario_->PumpTemperatureStream(t); });
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  auto q4 = std::make_shared<ContinuousQuery>("q4", scenario_->Q4());
  ASSERT_TRUE(executor.Register(q3).ok());
  ASSERT_TRUE(executor.Register(q4).ok());
  executor.Run(2);
  EXPECT_TRUE(executor.last_errors().empty());

  // "when a temperature exceeds 35.5°C, send 'Hot!' to the contacts".
  scenario_->ClearOutboxes();
  scenario_->sensors()[1]->set_bias(25.0);
  executor.Run(1);
  ASSERT_FALSE(scenario_->AllSentMessages().empty());
  EXPECT_EQ(scenario_->AllSentMessages()[0].text, "Hot!");

  // "when a temperature goes down below 12.0°C, take a photo of the area"
  // — Q4's result is an infinite XD-Relation (a stream of photos).
  EXPECT_EQ(scenario_->Q4()->kind(), PlanKind::kStreaming);
  scenario_->sensors()[3]->set_bias(-10.0);
  executor.Run(1);
  EXPECT_GT(scenario_->cameras()[2]->photos_taken(), 0u);
}

// --------------------------------------------------------------------------
// §5.1: the Serena DDL of Tables 1-2 defines the same environment this
// scenario builds in C++ (modulo service implementations).
// --------------------------------------------------------------------------
TEST_F(PaperWalkthroughTest, Section51DdlDefinesSameEnvironment) {
  Environment ddl_env;
  StreamStore ddl_streams;
  SerenaCatalog catalog(&ddl_env, &ddl_streams);
  ASSERT_TRUE(catalog.Execute(R"(
    PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
    PROTOTYPE checkPhoto(area STRING) : (quality INTEGER, delay REAL);
    PROTOTYPE takePhoto(area STRING, quality INTEGER) : (photo BLOB);
    PROTOTYPE getTemperature() : (temperature REAL);
    EXTENDED RELATION contacts (
      name STRING, address STRING, text STRING VIRTUAL,
      messenger SERVICE, sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
    EXTENDED RELATION cameras (
      camera SERVICE, area STRING, quality INTEGER VIRTUAL,
      delay REAL VIRTUAL, photo BLOB VIRTUAL
    ) USING BINDING PATTERNS (
      checkPhoto[camera](area) : (quality, delay),
      takePhoto[camera](area, quality) : (photo)
    );
  )")
                  .ok());
  const ExtendedSchema& from_ddl =
      ddl_env.GetRelation("contacts").ValueOrDie()->schema();
  const ExtendedSchema& from_code =
      env().GetRelation("contacts").ValueOrDie()->schema();
  EXPECT_TRUE(from_ddl.SameAttributes(from_code));
}

}  // namespace
}  // namespace serena
