#include "env/scenario.h"

#include <gtest/gtest.h>

namespace serena {
namespace {

TEST(TemperatureScenarioTest, PaperDefaultsMatchMotivatingExample) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Environment& env = scenario->env();
  // Tables 1-2: 4 prototypes, 4 sensors + 3 cameras + 3 messengers.
  EXPECT_EQ(env.PrototypeNames().size(), 4u);
  EXPECT_EQ(env.registry().ServicesImplementing("getTemperature").size(),
            4u);
  EXPECT_EQ(env.registry().ServicesImplementing("sendMessage").size(), 3u);
  EXPECT_EQ(env.registry().ServicesImplementing("takePhoto").size(), 3u);
  // Relations populated per the paper's examples.
  EXPECT_EQ(env.GetRelation("sensors").ValueOrDie()->size(), 4u);
  EXPECT_EQ(env.GetRelation("contacts").ValueOrDie()->size(), 3u);
  EXPECT_EQ(env.GetRelation("cameras").ValueOrDie()->size(), 3u);
  EXPECT_EQ(env.GetRelation("surveillance").ValueOrDie()->size(), 3u);
  EXPECT_TRUE(scenario->streams().HasStream("temperatures"));
}

TEST(TemperatureScenarioTest, ScalingOptionsGrowEverything) {
  TemperatureScenarioOptions options;
  options.extra_sensors = 10;
  options.extra_cameras = 5;
  options.extra_contacts = 7;
  options.extra_areas = 2;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  Environment& env = scenario->env();
  EXPECT_EQ(env.GetRelation("sensors").ValueOrDie()->size(), 14u);
  EXPECT_EQ(env.GetRelation("cameras").ValueOrDie()->size(), 8u);
  EXPECT_EQ(env.GetRelation("contacts").ValueOrDie()->size(), 10u);
  EXPECT_EQ(scenario->sensors().size(), 14u);
}

TEST(TemperatureScenarioTest, TakePhotoActiveOptionPropagates) {
  TemperatureScenarioOptions options;
  options.take_photo_active = true;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  auto proto =
      scenario->env().GetPrototype("takePhoto").ValueOrDie();
  EXPECT_TRUE(proto->active());
  // And the relation's binding pattern reflects it.
  const XRelation* cameras =
      scenario->env().GetRelation("cameras").ValueOrDie();
  EXPECT_TRUE(cameras->schema().FindBindingPattern("takePhoto")->active());
}

TEST(TemperatureScenarioTest, PumpValidatesAgainstStreamSchema) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ASSERT_TRUE(scenario->PumpTemperatureStream(1).ok());
  const XDRelation* stream =
      scenario->streams().GetStream("temperatures").ValueOrDie();
  const auto tuples = stream->InsertedDuring(0, 1);
  ASSERT_EQ(tuples.size(), 4u);
  for (const Tuple& t : tuples) {
    EXPECT_TRUE(t[0].is_string());  // location
    EXPECT_TRUE(t[1].is_real());    // temperature
  }
}

TEST(TemperatureScenarioTest, AddRemoveSensorKeepsRelationInSync) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ASSERT_TRUE(scenario->AddSensor("sensor50", "lobby", 18.0).ok());
  EXPECT_EQ(scenario->env().GetRelation("sensors").ValueOrDie()->size(),
            5u);
  EXPECT_TRUE(scenario->env().registry().Contains("sensor50"));
  ASSERT_TRUE(scenario->RemoveSensor("sensor50").ok());
  EXPECT_EQ(scenario->env().GetRelation("sensors").ValueOrDie()->size(),
            4u);
  EXPECT_FALSE(scenario->env().registry().Contains("sensor50"));
  EXPECT_FALSE(scenario->RemoveSensor("sensor50").ok());
}

TEST(TemperatureScenarioTest, CanonicalQueriesInferSchemas) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  for (const PlanPtr& q :
       {scenario->Q1(), scenario->Q1Prime(), scenario->Q2(),
        scenario->Q2Prime(), scenario->Q3(), scenario->Q4()}) {
    EXPECT_TRUE(q->InferSchema(scenario->env(), &scenario->streams()).ok())
        << q->ToString();
  }
}

TEST(TemperatureScenarioTest, OutboxHelpers) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  QueryResult r = Execute(scenario->Q1(), &scenario->env(),
                          &scenario->streams(), 1)
                      .ValueOrDie();
  EXPECT_EQ(scenario->AllSentMessages().size(), 2u);
  scenario->ClearOutboxes();
  EXPECT_TRUE(scenario->AllSentMessages().empty());
}

TEST(RssScenarioTest, DefaultsAndPump) {
  auto scenario = RssScenario::Build().MoveValueOrDie();
  EXPECT_EQ(scenario->feeds().size(), 3u);  // lemonde, lefigaro, cnn.
  EXPECT_EQ(scenario->env().GetRelation("feeds").ValueOrDie()->size(), 3u);
  ASSERT_TRUE(scenario->PumpNews(1).ok());
  const XDRelation* news =
      scenario->streams().GetStream("news").ValueOrDie();
  // 3 feeds x items_per_instant (default 2).
  EXPECT_EQ(news->InsertedDuring(0, 1).size(), 6u);
}

TEST(RssScenarioTest, KeywordQueryShapes) {
  auto scenario = RssScenario::Build().MoveValueOrDie();
  PlanPtr q = scenario->KeywordQuery("Obama", 5);
  EXPECT_EQ(q->ToString(),
            "select[title contains 'Obama'](window[5](news))");
  PlanPtr f = scenario->ForwardQuery("Obama", 5, "Carla");
  EXPECT_TRUE(
      f->InferSchema(scenario->env(), &scenario->streams()).ok());
}

}  // namespace
}  // namespace serena
