// Per-query health tracking and the self-observability meta-relations:
// lag/streak semantics, executor integration, and the acceptance
// scenario — a standing Serena query over `sys_query_health` detecting a
// persistently failing query within two ticks of its streak crossing the
// alert threshold.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ddl/algebra_parser.h"
#include "obs/meta.h"
#include "obs/metrics.h"
#include "stream/continuous_query.h"
#include "stream/executor.h"
#include "stream/query_health.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {
namespace {

using obs::kSysMetricsRelation;
using obs::kSysQueryHealthRelation;
using obs::kSysSpansRelation;

QueryHealth::QuerySnapshot Find(
    const std::vector<QueryHealth::QuerySnapshot>& snapshots,
    const std::string& name) {
  for (const auto& snapshot : snapshots) {
    if (snapshot.name == name) return snapshot;
  }
  ADD_FAILURE() << "no snapshot for " << name;
  return {};
}

ContinuousQueryPtr MakeQuery(const std::string& name,
                             const std::string& algebra) {
  auto plan = ParseAlgebra(algebra);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::make_shared<ContinuousQuery>(name, *plan);
}

// ---------------------------------------------------------------------------
// QueryHealth unit semantics
// ---------------------------------------------------------------------------

TEST(QueryHealthTest, LagCountsFromRegistrationUntilFirstStep) {
  QueryHealth health;
  health.Register("q", /*now=*/2);
  EXPECT_EQ(Find(health.Snapshots(), "q").lag, 0);
  health.SetNow(5);
  const auto snapshot = Find(health.Snapshots(), "q");
  EXPECT_EQ(snapshot.last_completed_instant, -1);
  EXPECT_EQ(snapshot.lag, 3);
}

TEST(QueryHealthTest, HealthySteadyStateHasLagOne) {
  QueryHealth health;
  health.Register("q", 0);
  for (Timestamp t = 1; t <= 3; ++t) {
    health.SetNow(t);
    // During the tick, before this query's own step, lag is 1 ("stepped
    // last tick").
    if (t > 1) {
      EXPECT_EQ(Find(health.Snapshots(), "q").lag, 1);
    }
    health.Observe("q", t, /*ok=*/true, /*step_ns=*/1000, /*rows_in=*/4,
                   /*rows_out=*/2);
  }
  const auto snapshot = Find(health.Snapshots(), "q");
  EXPECT_EQ(snapshot.last_completed_instant, 3);
  EXPECT_EQ(snapshot.lag, 0);
  EXPECT_EQ(snapshot.steps, 3u);
  EXPECT_EQ(snapshot.rows_in, 12u);
  EXPECT_DOUBLE_EQ(snapshot.rows_in_rate, 4.0);
  EXPECT_DOUBLE_EQ(snapshot.rows_out_rate, 2.0);
}

TEST(QueryHealthTest, StalledQueryShowsGrowingLag) {
  QueryHealth health;
  health.Register("q", 0);
  health.SetNow(1);
  health.Observe("q", 1, true, 1000, 0, 0);
  health.SetNow(4);  // Three ticks without a completed step.
  EXPECT_EQ(Find(health.Snapshots(), "q").lag, 3);
}

TEST(QueryHealthTest, ErrorStreakAccumulatesAndResets) {
  QueryHealth health;
  health.Register("q", 0);
  for (Timestamp t = 1; t <= 3; ++t) {
    health.SetNow(t);
    health.Observe("q", t, /*ok=*/false, 500, 0, 0);
  }
  auto snapshot = Find(health.Snapshots(), "q");
  EXPECT_EQ(snapshot.error_streak, 3u);
  EXPECT_EQ(snapshot.total_errors, 3u);
  EXPECT_EQ(snapshot.steps, 0u);
  EXPECT_EQ(snapshot.last_completed_instant, -1);

  health.SetNow(4);
  health.Observe("q", 4, /*ok=*/true, 500, 1, 1);
  snapshot = Find(health.Snapshots(), "q");
  EXPECT_EQ(snapshot.error_streak, 0u);   // Reset by the success...
  EXPECT_EQ(snapshot.total_errors, 3u);   // ...but history is kept.
  EXPECT_EQ(snapshot.last_completed_instant, 4);
}

TEST(QueryHealthTest, StepLatencyPercentilesAreOrdered) {
  QueryHealth health;
  health.Register("q", 0);
  for (int i = 0; i < 100; ++i) {
    health.Observe("q", 1, true, i < 99 ? 1000 : 1000000, 0, 0);
  }
  const auto snapshot = Find(health.Snapshots(), "q");
  EXPECT_GT(snapshot.p50_step_ns, 0u);
  EXPECT_GE(snapshot.p99_step_ns, snapshot.p50_step_ns);
}

TEST(QueryHealthTest, ReRegisteringResetsTheEntry) {
  QueryHealth health;
  health.Register("q", 0);
  health.Observe("q", 1, false, 500, 0, 0);
  health.Register("q", 2);
  const auto snapshot = Find(health.Snapshots(), "q");
  EXPECT_EQ(snapshot.error_streak, 0u);
  EXPECT_EQ(snapshot.total_errors, 0u);
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

TEST(QueryHealthExecutorTest, FailingQueryBuildsAStreakHealthyOneDoesNot) {
  Environment env;
  auto schema = ExtendedSchema::Create(
      "readings", {{"value", DataType::kInt}}, {});
  ASSERT_TRUE(schema.ok()) << schema.status();
  XRelation readings(*schema);
  readings.InsertUnchecked(Tuple{Value::Int(7)});
  ASSERT_TRUE(env.PutRelation(std::move(readings)).ok());

  StreamStore streams;
  ContinuousExecutor executor(&env, &streams);
  ASSERT_TRUE(
      executor.Register(MakeQuery("healthy", "select[value > 0](readings)"))
          .ok());
  // Scans a relation that does not exist: every step fails.
  ASSERT_TRUE(
      executor.Register(MakeQuery("doomed", "select[value > 0](nosuch)"))
          .ok());

  executor.Run(3);

  const auto snapshots = executor.health().Snapshots();
  const auto healthy = Find(snapshots, "healthy");
  EXPECT_EQ(healthy.error_streak, 0u);
  EXPECT_EQ(healthy.steps, 3u);
  EXPECT_EQ(healthy.last_completed_instant, 3);
  const auto doomed = Find(snapshots, "doomed");
  EXPECT_EQ(doomed.error_streak, 3u);
  EXPECT_EQ(doomed.total_errors, 3u);
  EXPECT_EQ(doomed.last_completed_instant, -1);
  EXPECT_EQ(doomed.lag, 3);
  EXPECT_EQ(executor.last_errors().count("doomed"), 1u);

  // Unregistration drops the health entry.
  ASSERT_TRUE(executor.Unregister("doomed").ok());
  EXPECT_EQ(executor.health().Snapshots().size(), 1u);
}

// ---------------------------------------------------------------------------
// Meta-relations: the PEMS observing itself
// ---------------------------------------------------------------------------

TEST(MetaRelationsTest, RegisterCreatesAllThreeRelations) {
  Environment env;
  StreamStore streams;
  ContinuousExecutor executor(&env, &streams);
  ASSERT_TRUE(obs::RegisterMetaRelations(&env, &executor).ok());
  EXPECT_TRUE(env.GetRelation(kSysMetricsRelation).ok());
  EXPECT_TRUE(env.GetRelation(kSysSpansRelation).ok());
  EXPECT_TRUE(env.GetRelation(kSysQueryHealthRelation).ok());
  // Registering twice is harmless (relations already exist).
  EXPECT_TRUE(obs::RegisterMetaRelations(&env, &executor).ok());
}

TEST(MetaRelationsTest, RefreshPopulatesMetricsAndHealthRows) {
  obs::MetricsRegistry::Global().set_enabled(true);
  obs::MetricsRegistry::Global()
      .GetCounter("serena.test.meta_refresh")
      .Increment();

  Environment env;
  StreamStore streams;
  ContinuousExecutor executor(&env, &streams);
  ASSERT_TRUE(obs::RegisterMetaRelations(&env, &executor).ok());

  QueryHealth health;
  health.Register("watched", 0);
  health.SetNow(2);
  health.Observe("watched", 2, false, 1000, 0, 0);
  ASSERT_TRUE(obs::RefreshMetaRelations(&env, &health).ok());

  const auto metrics = env.GetRelation(kSysMetricsRelation);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT((*metrics)->size(), 0u);
  bool saw_counter = false;
  for (const Tuple& row : (*metrics)->tuples()) {
    if (row[0].string_value() == "serena.test.meta_refresh") {
      saw_counter = true;
      EXPECT_EQ(row[1].string_value(), "counter");
      EXPECT_GE(row[2].real_value(), 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);

  // sys_query_health(name, last_instant, lag, streak, ...).
  const auto rows = env.GetRelation(kSysQueryHealthRelation);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)->size(), 1u);
  const Tuple& row = (*rows)->tuples()[0];
  EXPECT_EQ(row[0].string_value(), "watched");
  EXPECT_EQ(row[1].int_value(), -1);  // Never completed.
  EXPECT_EQ(row[2].int_value(), 2);   // Lag from registration.
  EXPECT_EQ(row[3].int_value(), 1);   // One failed step.
}

/// The acceptance scenario: a meta-query
/// `select[streak >= 3](sys_query_health)` registered as an ordinary
/// continuous query must surface a failing query within 2 ticks of its
/// error streak reaching 3.
TEST(MetaRelationsTest, StandingMetaQueryDetectsFailingQueryWithinTwoTicks) {
  Environment env;
  StreamStore streams;
  ContinuousExecutor executor(&env, &streams);
  ASSERT_TRUE(obs::RegisterMetaRelations(&env, &executor).ok());

  // The patient: fails every tick (scan of a nonexistent relation).
  ASSERT_TRUE(
      executor.Register(MakeQuery("doomed", "select[value > 0](nosuch)"))
          .ok());

  // The watchdog: plain Serena algebra over the health meta-relation.
  auto watchdog = MakeQuery("watchdog", "select[streak >= 3](sys_query_health)");
  Timestamp first_detection = -1;
  std::vector<std::string> detected;
  watchdog->set_sink([&](Timestamp t, const XRelation& result) {
    for (const Tuple& row : result.tuples()) {
      if (row[0].string_value() == "doomed" && first_detection < 0) {
        first_detection = t;
        detected.push_back(row[0].string_value());
      }
    }
  });
  ASSERT_TRUE(executor.Register(std::move(watchdog)).ok());

  // "doomed" reaches streak 3 at the end of tick 3; the meta source
  // republishes sys_query_health at the start of tick 4, where the
  // watchdog must fire.
  executor.Run(6);

  EXPECT_EQ(Find(executor.health().Snapshots(), "doomed").error_streak, 6u);
  ASSERT_GE(first_detection, 0) << "watchdog never fired";
  EXPECT_LE(first_detection, 5) << "detection later than streak+2 ticks";
  EXPECT_EQ(first_detection, 4);
  EXPECT_EQ(detected, std::vector<std::string>{"doomed"});
}

}  // namespace
}  // namespace serena
