#include "service/service_registry.h"

#include <gtest/gtest.h>

#include "env/prototypes.h"
#include "env/sim_services.h"
#include "env/synthetic_service.h"
#include "service/lambda_service.h"

namespace serena {
namespace {

TEST(PrototypeTest, CreateValidates) {
  auto in = RelationSchema::Create({{"a", DataType::kString}}).ValueOrDie();
  auto out = RelationSchema::Create({{"b", DataType::kBool}}).ValueOrDie();
  EXPECT_TRUE(Prototype::Create("p", in, out, false).ok());
  // Empty name.
  EXPECT_FALSE(Prototype::Create("", in, out, false).ok());
  // Empty output (Def. 2: Output_ψ non-empty).
  EXPECT_FALSE(Prototype::Create("p", in, RelationSchema(), false).ok());
  // Overlapping input/output attribute.
  auto out2 = RelationSchema::Create({{"a", DataType::kBool}}).ValueOrDie();
  EXPECT_FALSE(Prototype::Create("p", in, out2, false).ok());
}

TEST(PrototypeTest, Table1Rendering) {
  EXPECT_EQ(MakeSendMessagePrototype()->ToString(),
            "PROTOTYPE sendMessage(address STRING, text STRING) : "
            "(sent BOOLEAN) ACTIVE");
  EXPECT_EQ(MakeGetTemperaturePrototype()->ToString(),
            "PROTOTYPE getTemperature() : (temperature REAL)");
  EXPECT_TRUE(MakeSendMessagePrototype()->active());
  EXPECT_FALSE(MakeCheckPhotoPrototype()->active());
}

TEST(RegistryTest, RegisterLookupUnregister) {
  ServiceRegistry registry;
  auto sensor = std::make_shared<TemperatureSensorService>("s1", 20.0, 1);
  ASSERT_TRUE(registry.Register(sensor).ok());
  EXPECT_EQ(registry.Register(
                    std::make_shared<TemperatureSensorService>("s1", 1, 1))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(registry.Contains("s1"));
  EXPECT_EQ(registry.Lookup("s1").ValueOrDie()->id(), "s1");
  EXPECT_FALSE(registry.Lookup("nope").ok());
  ASSERT_TRUE(registry.Unregister("s1").ok());
  EXPECT_EQ(registry.Unregister("s1").code(), StatusCode::kNotFound);
  EXPECT_FALSE(registry.Register(nullptr).ok());
}

TEST(RegistryTest, ServicesImplementing) {
  ServiceRegistry registry;
  (void)registry.Register(
      std::make_shared<TemperatureSensorService>("s1", 20.0, 1));
  (void)registry.Register(
      std::make_shared<TemperatureSensorService>("s2", 21.0, 2));
  (void)registry.Register(std::make_shared<MessengerService>(
      "email", MessengerService::Kind::kEmail));
  EXPECT_EQ(registry.ServicesImplementing("getTemperature"),
            (std::vector<std::string>{"s1", "s2"}));
  EXPECT_EQ(registry.ServicesImplementing("sendMessage"),
            (std::vector<std::string>{"email"}));
  EXPECT_TRUE(registry.ServicesImplementing("takePhoto").empty());
}

TEST(RegistryTest, InvokeValidatesInputAndImplements) {
  ServiceRegistry registry;
  (void)registry.Register(
      std::make_shared<TemperatureSensorService>("s1", 20.0, 1));
  auto get_temp = MakeGetTemperaturePrototype();
  auto send = MakeSendMessagePrototype();
  // Wrong input arity for getTemperature (expects 0).
  EXPECT_FALSE(
      registry.Invoke(*get_temp, "s1", Tuple{Value::Int(1)}, 0).ok());
  // Service doesn't implement sendMessage.
  EXPECT_EQ(registry
                .Invoke(*send, "s1",
                        Tuple{Value::String("a"), Value::String("t")}, 0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Unknown service.
  EXPECT_EQ(registry.Invoke(*get_temp, "ghost", Tuple(), 0).status().code(),
            StatusCode::kNotFound);
  // Happy path.
  auto result = registry.Invoke(*get_temp, "s1", Tuple(), 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->size(), 1u);
  EXPECT_TRUE((**result)[0][0].is_real());
}

TEST(RegistryTest, OutputValidationCatchesBadServices) {
  ServiceRegistry registry;
  auto proto = MakeGetTemperaturePrototype();
  auto bad = std::make_shared<LambdaService>("bad");
  bad->AddMethod(proto, [](const Tuple&, Timestamp) {
    // Returns a string where a REAL is declared.
    return Result<std::vector<Tuple>>(
        std::vector<Tuple>{Tuple{Value::String("oops")}});
  });
  (void)registry.Register(bad);
  EXPECT_EQ(registry.Invoke(*proto, "bad", Tuple(), 0).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(RegistryTest, ListenersFireOnBothEvents) {
  ServiceRegistry registry;
  std::vector<std::string> events;
  const std::size_t token = registry.AddListener(
      [&](const std::string& ref, bool registered) {
        events.push_back((registered ? "+" : "-") + ref);
      });
  (void)registry.Register(
      std::make_shared<TemperatureSensorService>("s1", 20.0, 1));
  (void)registry.Unregister("s1");
  EXPECT_EQ(events, (std::vector<std::string>{"+s1", "-s1"}));
  registry.RemoveListener(token);
  (void)registry.Register(
      std::make_shared<TemperatureSensorService>("s2", 20.0, 1));
  EXPECT_EQ(events.size(), 2u);  // Listener removed.
}

TEST(RegistryTest, StatsTrackActiveAndPhysical) {
  ServiceRegistry registry;
  auto messenger = std::make_shared<MessengerService>(
      "email", MessengerService::Kind::kEmail);
  (void)registry.Register(messenger);
  auto send = MakeSendMessagePrototype();
  const Tuple input{Value::String("a@b"), Value::String("hi")};
  (void)registry.Invoke(*send, "email", input, 1);
  (void)registry.Invoke(*send, "email", input, 1);  // Memo hit.
  EXPECT_EQ(registry.stats().logical_invocations, 2u);
  EXPECT_EQ(registry.stats().physical_invocations, 1u);
  EXPECT_EQ(registry.stats().active_invocations, 1u);
  EXPECT_EQ(registry.stats().output_tuples, 1u);
  registry.ResetStats();
  EXPECT_EQ(registry.stats().logical_invocations, 0u);
}

TEST(SimServicesTest, SensorDeterministicWithinInstantVariesAcross) {
  TemperatureSensorService sensor("s", 20.0, 42);
  EXPECT_DOUBLE_EQ(sensor.TemperatureAt(5), sensor.TemperatureAt(5));
  EXPECT_NE(sensor.TemperatureAt(5), sensor.TemperatureAt(6));
  sensor.set_bias(10.0);
  EXPECT_NEAR(sensor.TemperatureAt(5), 30.0, 4.0);
}

TEST(SimServicesTest, CameraCoverageAndPhotoSize) {
  CameraService camera("cam", {"office"}, 1);
  auto check = MakeCheckPhotoPrototype();
  auto take = MakeTakePhotoPrototype();
  // Covered area answers.
  auto q = camera.Invoke(*check, Tuple{Value::String("office")}, 1);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 1u);
  const int quality = static_cast<int>((*q)[0][0].int_value());
  EXPECT_GE(quality, 1);
  EXPECT_LE(quality, 10);
  // Uncovered area: empty relation, not an error.
  auto none = camera.Invoke(*check, Tuple{Value::String("roof")}, 1);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Photo size scales with quality.
  auto small = camera.Invoke(
      *take, Tuple{Value::String("office"), Value::Int(1)}, 1);
  auto large = camera.Invoke(
      *take, Tuple{Value::String("office"), Value::Int(10)}, 1);
  EXPECT_LT((*small)[0][0].blob_value().size(),
            (*large)[0][0].blob_value().size());
  EXPECT_EQ(camera.photos_taken(), 2u);
}

TEST(SimServicesTest, MessengerUndeliverableAddress) {
  MessengerService messenger("email", MessengerService::Kind::kEmail);
  messenger.AddUndeliverableAddress("void@nowhere");
  auto send = MakeSendMessagePrototype();
  auto ok = messenger.Invoke(
      *send, Tuple{Value::String("a@b"), Value::String("hi")}, 1);
  EXPECT_EQ((*ok)[0][0], Value::Bool(true));
  auto bounced = messenger.Invoke(
      *send, Tuple{Value::String("void@nowhere"), Value::String("hi")}, 1);
  EXPECT_EQ((*bounced)[0][0], Value::Bool(false));
  ASSERT_EQ(messenger.outbox().size(), 1u);  // Bounced not delivered.
}

TEST(SimServicesTest, RssFeedKeywordRate) {
  RssFeedService feed("f", {"w1", "w2"}, {"Obama"}, 1.0, 2, 3);
  // keyword_rate 1.0: every word is a keyword.
  auto items = feed.ItemsAt(4);
  ASSERT_EQ(items.size(), 2u);
  for (const auto& [id, title] : items) {
    EXPECT_NE(title.find("Obama"), std::string::npos);
  }
  // Feed only answers for its own id.
  auto proto = MakeFetchItemsPrototype();
  auto other = feed.Invoke(*proto, Tuple{Value::String("other")}, 4);
  EXPECT_TRUE(other->empty());
}

TEST(SyntheticServiceTest, DeterministicSchemaConformantOutputs) {
  auto proto = MakeCheckPhotoPrototype();
  SyntheticService svc("synth", {proto});
  auto a = svc.Invoke(*proto, Tuple{Value::String("office")}, 9);
  auto b = svc.Invoke(*proto, Tuple{Value::String("office")}, 9);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0], (*b)[0]);  // Deterministic.
  EXPECT_TRUE((*a)[0][0].is_int());
  EXPECT_TRUE((*a)[0][1].is_real());
  auto later = svc.Invoke(*proto, Tuple{Value::String("office")}, 10);
  EXPECT_NE((*a)[0], (*later)[0]);  // Time-varying.
  EXPECT_FALSE(svc.Invoke(*MakeSendMessagePrototype(),
                          Tuple{Value::String("a"), Value::String("b")}, 1)
                   .ok());
}

}  // namespace
}  // namespace serena
