#include "io/csv.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ddl/catalog.h"
#include "ddl/dump.h"
#include "env/prototypes.h"

namespace serena {
namespace {

ExtendedSchemaPtr MixedSchema() {
  return ExtendedSchema::Create(
             "mixed", {{"id", DataType::kInt},
                       {"name", DataType::kString},
                       {"score", DataType::kReal},
                       {"ok", DataType::kBool},
                       {"payload", DataType::kBlob},
                       {"note", DataType::kString, AttributeKind::kVirtual}})
      .ValueOrDie();
}

XRelation MakeMixed() {
  XRelation r(MixedSchema());
  (void)r.Insert(Tuple{Value::Int(1), Value::String("plain"),
                       Value::Real(3.5), Value::Bool(true),
                       Value::BlobValue(Blob{0xde, 0xad})});
  (void)r.Insert(Tuple{Value::Int(2), Value::String("has,comma \"q\""),
                       Value::Real(-0.25), Value::Bool(false),
                       Value::BlobValue(Blob{})});
  return r;
}

TEST(CsvTest, ExportSkipsVirtualAttributes) {
  const std::string csv = ToCsv(MakeMixed()).ValueOrDie();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "id,name,score,ok,payload");
  EXPECT_EQ(csv.find("note"), std::string::npos);
}

TEST(CsvTest, RoundTripPreservesValues) {
  XRelation original = MakeMixed();
  const std::string csv = ToCsv(original).ValueOrDie();
  XRelation parsed = FromCsv(original.schema_ptr(), csv).ValueOrDie();
  EXPECT_TRUE(original.SetEquals(parsed));
}

TEST(CsvTest, QuotingAndEscapes) {
  const std::string csv = ToCsv(MakeMixed()).ValueOrDie();
  EXPECT_NE(csv.find("\"has,comma \"\"q\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("dead"), std::string::npos);  // Hex blob.
}

TEST(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(FromCsv(MixedSchema(), "wrong,header\n1,2\n").ok());
}

TEST(CsvTest, ArityAndTypeErrors) {
  auto schema = ExtendedSchema::Create("t", {{"i", DataType::kInt}})
                    .ValueOrDie();
  EXPECT_FALSE(FromCsv(schema, "i\n1,2\n").ok());        // Arity.
  EXPECT_FALSE(FromCsv(schema, "i\nnotanint\n").ok());   // Type.
  EXPECT_FALSE(FromCsv(schema, "i\n\"open\n").ok());     // Unterminated.
  // Empty body is fine.
  EXPECT_TRUE(FromCsv(schema, "i\n").ValueOrDie().empty());
}

TEST(CsvTest, BlobParsing) {
  auto schema = ExtendedSchema::Create("b", {{"p", DataType::kBlob}})
                    .ValueOrDie();
  XRelation parsed = FromCsv(schema, "p\ncafe\n").ValueOrDie();
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.tuples()[0][0].blob_value(), (Blob{0xca, 0xfe}));
  EXPECT_FALSE(FromCsv(schema, "p\nabc\n").ok());   // Odd length.
  EXPECT_FALSE(FromCsv(schema, "p\nzz\n").ok());    // Bad hex.
}

TEST(DumpTest, DumpReloadsThroughCatalog) {
  // Build an environment via DDL, dump it, reload the dump into a fresh
  // environment, and compare.
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  ASSERT_TRUE(catalog.Execute(R"(
    PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
    SERVICE email IMPLEMENTS sendMessage;
    EXTENDED RELATION contacts (
      name STRING, address STRING, text STRING VIRTUAL,
      messenger SERVICE, sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
    INSERT INTO contacts VALUES ('Carla', 'carla@elysee.fr', 'email'),
                                ('O''Brien', 'ob@x', 'email');
    EXTENDED STREAM temperatures (location STRING, temperature REAL);
  )")
                  .ok());

  const std::string dumped = DumpEnvironment(env, &streams);
  Environment env2;
  StreamStore streams2;
  SerenaCatalog catalog2(&env2, &streams2);
  ASSERT_EQ(catalog2.Execute(dumped), Status::OK()) << dumped;

  EXPECT_EQ(env2.PrototypeNames(), env.PrototypeNames());
  EXPECT_EQ(env2.registry().ServiceRefs(), env.registry().ServiceRefs());
  EXPECT_EQ(env2.RelationNames(), env.RelationNames());
  EXPECT_TRUE(streams2.HasStream("temperatures"));
  const XRelation* original = env.GetRelation("contacts").ValueOrDie();
  const XRelation* reloaded = env2.GetRelation("contacts").ValueOrDie();
  EXPECT_TRUE(original->SetEquals(*reloaded));
  EXPECT_EQ(reloaded->schema().binding_patterns().size(), 1u);
}

/// Property sweep: random relations survive CSV round trips.
class CsvPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvPropertyTest, RandomRelationsRoundTrip) {
  Rng rng(GetParam() * 31 + 7);
  auto schema =
      ExtendedSchema::Create("rand", {{"i", DataType::kInt},
                                      {"r", DataType::kReal},
                                      {"s", DataType::kString},
                                      {"b", DataType::kBool},
                                      {"p", DataType::kBlob}})
          .ValueOrDie();
  XRelation relation(schema);
  const int n = 1 + static_cast<int>(rng.NextBounded(40));
  for (int row = 0; row < n; ++row) {
    // Strings exercising quoting: commas, quotes, newlines-in-quotes.
    static const char* kNasty[] = {"plain", "with,comma", "with\"quote",
                                   "mix,\"both\"", "", "  spaces  "};
    Blob blob(rng.NextBounded(8));
    for (auto& byte : blob) {
      byte = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    (void)relation.InsertUnchecked(
        Tuple{Value::Int(rng.NextInt(-1000, 1000)),
              Value::Real(rng.NextDouble() * 1e6 - 5e5),
              Value::String(kNasty[rng.NextBounded(6)]),
              Value::Bool(rng.NextBool(0.5)),
              Value::BlobValue(std::move(blob))});
  }
  const std::string csv = ToCsv(relation).ValueOrDie();
  XRelation parsed = FromCsv(schema, csv).ValueOrDie();
  EXPECT_TRUE(relation.SetEquals(parsed)) << csv;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(DumpTest, EmptyEnvironment) {
  Environment env;
  const std::string dumped = DumpEnvironment(env, nullptr);
  Environment env2;
  StreamStore streams2;
  SerenaCatalog catalog(&env2, &streams2);
  EXPECT_TRUE(catalog.Execute(dumped).ok());
}

}  // namespace
}  // namespace serena
