// Tests for the runtime statistics store: fingerprint stability across
// plan instances, RecordPlan aggregation (including the rows_in
// derivation from children), the JSON persistence roundtrip into the
// baseline map, and Clear() semantics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "ddl/algebra_parser.h"
#include "obs/stats.h"

namespace serena {
namespace obs {
namespace {

PlanPtr MustParse(const std::string& text) {
  return ParseAlgebra(text).ValueOrDie();
}

class StatsStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A set SERENA_STATS_FILE would make local stores load a baseline
    // (and MaybeSaveEnvFile write one) behind the test's back.
    unsetenv("SERENA_STATS_FILE");
  }
};

TEST_F(StatsStoreTest, FingerprintStableAcrossPlanInstances) {
  const std::string text = "select[temperature > 30](window[5](readings))";
  const PlanPtr a = MustParse(text);
  const PlanPtr b = MustParse(text);
  ASSERT_NE(a.get(), b.get());
  EXPECT_EQ(OperatorFingerprint(*a), OperatorFingerprint(*b));
  EXPECT_EQ(OperatorFingerprint(*a).size(), 16u);
  // Children fingerprint independently of their parents.
  EXPECT_EQ(OperatorFingerprint(*a->children()[0]),
            OperatorFingerprint(*b->children()[0]));
}

TEST_F(StatsStoreTest, FingerprintDistinguishesStructure) {
  const PlanPtr narrow = MustParse("select[temperature > 30](readings)");
  const PlanPtr wide = MustParse("select[temperature > 20](readings)");
  const PlanPtr windowed =
      MustParse("select[temperature > 30](window[5](readings))");
  EXPECT_NE(OperatorFingerprint(*narrow), OperatorFingerprint(*wide));
  EXPECT_NE(OperatorFingerprint(*narrow), OperatorFingerprint(*windowed));
  // The same selection over a different input is a different operator.
  EXPECT_NE(OperatorFingerprint(*narrow),
            OperatorFingerprint(*windowed->children()[0]));
}

TEST_F(StatsStoreTest, RecordPlanAggregatesAndDerivesRowsIn) {
  const PlanPtr plan = MustParse("select[temperature > 30](readings)");
  const PlanNode* select = plan.get();
  const PlanNode* scan = plan->children()[0].get();

  StatsStore store;
  PlanStatsCollector collector;
  NodeRuntimeStats& scan_stats = collector.StatsFor(scan);
  scan_stats.evals = 1;
  scan_stats.rows_out = 10;
  scan_stats.wall_ns = 500;
  NodeRuntimeStats& select_stats = collector.StatsFor(select);
  select_stats.evals = 1;
  select_stats.rows_out = 4;
  select_stats.wall_ns = 1200;
  store.RecordPlan(*plan, collector);

  ASSERT_EQ(store.size(), 2u);
  const std::optional<OperatorStats> sel =
      store.Find(OperatorFingerprint(*select));
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->kind, "select");
  EXPECT_EQ(sel->evals, 1u);
  // rows_in is derived from the child's output, not stored directly.
  EXPECT_EQ(sel->rows_in, 10u);
  EXPECT_EQ(sel->rows_out, 4u);
  EXPECT_EQ(sel->wall_ns, 1200u);
  EXPECT_DOUBLE_EQ(sel->selectivity(), 0.4);

  const std::optional<OperatorStats> leaf =
      store.Find(OperatorFingerprint(*scan));
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(leaf->rows_in, 0u);
  // A leaf has no relational input: neutral selectivity prior.
  EXPECT_DOUBLE_EQ(leaf->selectivity(), 1.0);

  // A second evaluation of a structurally identical plan instance
  // accumulates into the same records.
  const PlanPtr again = MustParse("select[temperature > 30](readings)");
  PlanStatsCollector second;
  second.StatsFor(again->children()[0].get()).rows_out = 6;
  second.StatsFor(again->children()[0].get()).evals = 1;
  NodeRuntimeStats& top = second.StatsFor(again.get());
  top.evals = 1;
  top.rows_out = 2;
  store.RecordPlan(*again, second);

  EXPECT_EQ(store.size(), 2u);
  const std::optional<OperatorStats> merged =
      store.Find(OperatorFingerprint(*select));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->evals, 2u);
  EXPECT_EQ(merged->rows_in, 16u);
  EXPECT_EQ(merged->rows_out, 6u);
  EXPECT_DOUBLE_EQ(merged->mean_rows_out(), 3.0);
}

TEST_F(StatsStoreTest, SnapshotOrdersByWallTime) {
  const PlanPtr plan = MustParse("select[n > 1](window[2](s))");
  StatsStore store;
  PlanStatsCollector collector;
  collector.StatsFor(plan.get()).wall_ns = 100;
  collector.StatsFor(plan.get()).evals = 1;
  collector.StatsFor(plan->children()[0].get()).wall_ns = 900;
  collector.StatsFor(plan->children()[0].get()).evals = 1;
  store.RecordPlan(*plan, collector);

  const std::vector<OperatorStats> snapshot = store.Snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  EXPECT_GE(snapshot[0].wall_ns, snapshot[1].wall_ns);
  EXPECT_EQ(snapshot[0].kind, "window");
}

TEST_F(StatsStoreTest, JsonRoundtripIntoBaseline) {
  const PlanPtr plan = MustParse("select[temperature > 30](readings)");
  StatsStore store;
  PlanStatsCollector collector;
  collector.StatsFor(plan->children()[0].get()).rows_out = 8;
  collector.StatsFor(plan->children()[0].get()).evals = 1;
  NodeRuntimeStats& top = collector.StatsFor(plan.get());
  top.evals = 3;
  top.rows_out = 5;
  top.wall_ns = 777;
  top.invocations = 4;
  top.memo_hits = 2;
  store.RecordPlan(*plan, collector);

  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"operators\""), std::string::npos);

  StatsStore fresh;
  EXPECT_FALSE(fresh.has_baseline());
  ASSERT_TRUE(fresh.LoadBaselineFromJson(json).ok());
  EXPECT_TRUE(fresh.has_baseline());
  const std::optional<OperatorStats> base =
      fresh.FindBaseline(OperatorFingerprint(*plan));
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(base->evals, 3u);
  EXPECT_EQ(base->rows_in, 8u);
  EXPECT_EQ(base->rows_out, 5u);
  EXPECT_EQ(base->wall_ns, 777u);
  EXPECT_EQ(base->invocations, 4u);
  EXPECT_EQ(base->memo_hits, 2u);
  EXPECT_DOUBLE_EQ(base->memo_hit_rate(), 0.5);
  // The baseline does not populate live records.
  EXPECT_EQ(fresh.size(), 0u);
  EXPECT_FALSE(fresh.Find(OperatorFingerprint(*plan)).has_value());
}

TEST_F(StatsStoreTest, ClearDropsLiveRecordsButKeepsBaseline) {
  const PlanPtr plan = MustParse("window[3](s)");
  StatsStore store;
  PlanStatsCollector collector;
  collector.StatsFor(plan.get()).evals = 1;
  collector.StatsFor(plan.get()).rows_out = 9;
  store.RecordPlan(*plan, collector);
  ASSERT_TRUE(store.LoadBaselineFromJson(store.ToJson()).ok());

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.has_baseline());
  EXPECT_TRUE(store.FindBaseline(OperatorFingerprint(*plan)).has_value());
}

TEST_F(StatsStoreTest, LoadBaselineRejectsMalformedJson) {
  StatsStore store;
  EXPECT_FALSE(store.LoadBaselineFromJson("not json").ok());
  EXPECT_FALSE(store.LoadBaselineFromJson("[1,2,3]").ok());
  EXPECT_FALSE(store.has_baseline());
}

}  // namespace
}  // namespace obs
}  // namespace serena
