#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "env/scenario.h"

namespace serena {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  std::vector<Diagnostic> Validate(const PlanPtr& plan) {
    return ValidatePlan(plan, scenario_->env(), &scenario_->streams())
        .ValueOrDie();
  }

  static std::size_t CountErrors(const std::vector<Diagnostic>& ds) {
    std::size_t n = 0;
    for (const auto& d : ds) {
      if (d.severity == Diagnostic::Severity::kError) ++n;
    }
    return n;
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(ValidateTest, CleanPlansHaveNoErrors) {
  for (const PlanPtr& q :
       {scenario_->Q1(), scenario_->Q2(), scenario_->Q3()}) {
    const auto diagnostics = Validate(q);
    EXPECT_TRUE(IsValid(diagnostics)) << q->ToString();
  }
}

TEST_F(ValidateTest, MissingRelationReported) {
  const auto diagnostics = Validate(Select(
      Scan("ghost"), Formula::Compare(Operand::Attr("x"), CompareOp::kEq,
                                      Operand::Const(Value::Int(1)))));
  ASSERT_FALSE(IsValid(diagnostics));
  EXPECT_NE(diagnostics[0].ToString().find("ghost"), std::string::npos);
}

TEST_F(ValidateTest, VirtualAttributeInFormulaReported) {
  const auto diagnostics = Validate(Select(
      Scan("contacts"),
      Formula::Compare(Operand::Attr("text"), CompareOp::kEq,
                       Operand::Const(Value::String("x")))));
  ASSERT_EQ(CountErrors(diagnostics), 1u);
  EXPECT_NE(diagnostics[0].message.find("virtual"), std::string::npos);
}

TEST_F(ValidateTest, MultipleIndependentErrorsAllCollected) {
  // Two broken branches under one union: both reported (InferSchema alone
  // would stop at the first).
  PlanPtr bad1 = Scan("ghost1");
  PlanPtr bad2 = Scan("ghost2");
  const auto diagnostics = Validate(UnionOf(bad1, bad2));
  EXPECT_EQ(CountErrors(diagnostics), 2u);
}

TEST_F(ValidateTest, InvokeBeforeRealizationReported) {
  // sendMessage needs `text` real; invoking directly is an error the
  // validator attributes to the invoke node.
  const auto diagnostics = Validate(Invoke(Scan("contacts"), "sendMessage"));
  ASSERT_EQ(CountErrors(diagnostics), 1u);
  EXPECT_NE(diagnostics[0].node.find("invoke"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("text"), std::string::npos);
}

TEST_F(ValidateTest, CartesianJoinWarned) {
  // temperatures-window and contacts share nothing.
  const auto diagnostics =
      Validate(Join(Window("temperatures", 1), Scan("contacts")));
  EXPECT_TRUE(IsValid(diagnostics));  // Legal...
  ASSERT_FALSE(diagnostics.empty());  // ...but suspicious.
  EXPECT_EQ(diagnostics[0].severity, Diagnostic::Severity::kWarning);
  EXPECT_NE(diagnostics[0].message.find("Cartesian"), std::string::npos);
}

TEST_F(ValidateTest, SelectionAboveActiveInvokeWarned) {
  const auto diagnostics = Validate(scenario_->Q1Prime());
  EXPECT_TRUE(IsValid(diagnostics));
  bool warned = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.message.find("ACTIVE invocation") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  // Q1 (filter first) produces no such warning.
  for (const Diagnostic& d : Validate(scenario_->Q1())) {
    EXPECT_EQ(d.message.find("ACTIVE invocation"), std::string::npos);
  }
}

TEST_F(ValidateTest, PatternEliminatingProjectionWarned) {
  const auto diagnostics =
      Validate(Project(Scan("contacts"), {"name", "messenger"}));
  EXPECT_TRUE(IsValid(diagnostics));
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_NE(diagnostics[0].message.find("binding pattern"),
            std::string::npos);
}

TEST_F(ValidateTest, StreamingWarnsAboutOneShot) {
  const auto diagnostics = Validate(scenario_->Q4());
  EXPECT_TRUE(IsValid(diagnostics));
  bool warned = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.message.find("continuous evaluation") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST_F(ValidateTest, AssignToRealAttributeReported) {
  const auto diagnostics =
      Validate(Assign(Scan("contacts"), "name", Value::String("x")));
  ASSERT_EQ(CountErrors(diagnostics), 1u);
  EXPECT_NE(diagnostics[0].message.find("already real"), std::string::npos);
}

TEST_F(ValidateTest, NullPlanIsArgumentError) {
  EXPECT_FALSE(
      ValidatePlan(nullptr, scenario_->env(), &scenario_->streams()).ok());
}

}  // namespace
}  // namespace serena
