#include "stream/xd_relation.h"

#include <gtest/gtest.h>

#include "stream/stream_store.h"

namespace serena {
namespace {

ExtendedSchemaPtr TemperaturesSchema() {
  return ExtendedSchema::Create("temperatures",
                                {{"location", DataType::kString},
                                 {"temperature", DataType::kReal}})
      .ValueOrDie();
}

Tuple Reading(const char* location, double temp) {
  return Tuple{Value::String(location), Value::Real(temp)};
}

TEST(XDRelationTest, AppendAndWindowedRead) {
  XDRelation stream(TemperaturesSchema());
  ASSERT_TRUE(stream.Append(1, Reading("office", 20.0)).ok());
  ASSERT_TRUE(stream.Append(2, Reading("office", 21.0)).ok());
  ASSERT_TRUE(stream.Append(2, Reading("roof", 14.0)).ok());
  ASSERT_TRUE(stream.Append(4, Reading("office", 22.0)).ok());

  // W[1] at τ=2: only instant-2 insertions.
  EXPECT_EQ(stream.InsertedDuring(1, 2).size(), 2u);
  // W[2] at τ=2: instants 1..2.
  EXPECT_EQ(stream.InsertedDuring(0, 2).size(), 3u);
  // W[1] at τ=3: nothing was inserted at 3.
  EXPECT_TRUE(stream.InsertedDuring(2, 3).empty());
  // Everything.
  EXPECT_EQ(stream.InsertedDuring(-1, 100).size(), 4u);
}

TEST(XDRelationTest, AppendOnlyOrderingEnforced) {
  XDRelation stream(TemperaturesSchema());
  ASSERT_TRUE(stream.Append(5, Reading("office", 20.0)).ok());
  EXPECT_EQ(stream.Append(4, Reading("office", 19.0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(stream.Append(5, Reading("roof", 13.0)).ok());  // Same instant.
}

TEST(XDRelationTest, ValidatesTuples) {
  XDRelation stream(TemperaturesSchema());
  EXPECT_FALSE(stream.Append(1, Tuple{Value::String("office")}).ok());
  EXPECT_FALSE(
      stream.Append(1, Tuple{Value::Real(3.0), Value::Real(4.0)}).ok());
}

TEST(XDRelationTest, PruneDiscardsOldHistory) {
  XDRelation stream(TemperaturesSchema());
  for (Timestamp t = 0; t < 10; ++t) {
    ASSERT_TRUE(stream.Append(t, Reading("office", 20.0 + t)).ok());
  }
  stream.PruneBefore(7);
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_TRUE(stream.InsertedDuring(-1, 6).empty());
  EXPECT_EQ(stream.InsertedDuring(6, 9).size(), 3u);
}

TEST(XDRelationTest, MultisetWithinInstantIsDeduplicatedAtWindow) {
  // Two identical readings at the same instant are retained in the stream
  // history (multiset, §4.1)...
  XDRelation stream(TemperaturesSchema());
  ASSERT_TRUE(stream.Append(1, Reading("office", 20.0)).ok());
  ASSERT_TRUE(stream.Append(1, Reading("office", 20.0)).ok());
  EXPECT_EQ(stream.InsertedDuring(0, 1).size(), 2u);
  // ...set semantics are restored at the window boundary, where tuples
  // re-enter the (set-based) X-Relation algebra of Def. 3.
}

TEST(XDRelationTest, LastInsertedRowWindow) {
  XDRelation stream(TemperaturesSchema());
  for (Timestamp t = 1; t <= 6; ++t) {
    ASSERT_TRUE(stream.Append(t, Reading("office", 20.0 + t)).ok());
  }
  // Last 3 at τ=6: readings from t=4,5,6.
  auto last3 = stream.LastInserted(3, 6);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0][1], Value::Real(24.0));
  EXPECT_EQ(last3[2][1], Value::Real(26.0));
  // At τ=4 only entries up to t=4 are eligible.
  auto at4 = stream.LastInserted(3, 4);
  ASSERT_EQ(at4.size(), 3u);
  EXPECT_EQ(at4[2][1], Value::Real(24.0));
  // Asking for more than exists returns all eligible.
  EXPECT_EQ(stream.LastInserted(100, 6).size(), 6u);
  EXPECT_TRUE(stream.LastInserted(3, 0).empty());
  EXPECT_TRUE(stream.LastInserted(0, 6).empty());
}

TEST(XDRelationTest, PruneBeforeKeepingRetainsRowDemand) {
  XDRelation stream(TemperaturesSchema());
  for (Timestamp t = 1; t <= 10; ++t) {
    ASSERT_TRUE(stream.Append(t, Reading("office", 20.0 + t)).ok());
  }
  stream.PruneBeforeKeeping(9, 5);  // Time cut would leave 2; rows demand 5.
  EXPECT_EQ(stream.size(), 5u);
  stream.PruneBeforeKeeping(3, 2);  // Time cut keeps all 5 remaining.
  EXPECT_EQ(stream.size(), 5u);
}

TEST(StreamStoreTest, AddGetDrop) {
  StreamStore store;
  ASSERT_TRUE(store.AddStream(TemperaturesSchema()).ok());
  EXPECT_TRUE(store.HasStream("temperatures"));
  EXPECT_EQ(store.AddStream(TemperaturesSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.GetStream("temperatures").ok());
  EXPECT_FALSE(store.GetStream("nope").ok());
  EXPECT_EQ(store.StreamNames(), std::vector<std::string>{"temperatures"});
  ASSERT_TRUE(store.DropStream("temperatures").ok());
  EXPECT_FALSE(store.HasStream("temperatures"));
  EXPECT_EQ(store.DropStream("temperatures").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace serena
