#include "algebra/parameters.h"

#include <gtest/gtest.h>

#include "ddl/algebra_parser.h"
#include "env/scenario.h"

namespace serena {
namespace {

class ParametersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(ParametersTest, ParseCollectBindExecute) {
  // The prepared-statement version of Table 4's Q1.
  PlanPtr prepared =
      ParseAlgebra(
          "invoke[sendMessage](assign[text := :msg](select[name != "
          ":who](contacts)))")
          .ValueOrDie();
  EXPECT_EQ(CollectParameters(prepared),
            (std::set<std::string>{"msg", "who"}));

  PlanPtr bound =
      BindParameters(prepared, {{"msg", Value::String("Bonjour!")},
                                {"who", Value::String("Carla")}})
          .ValueOrDie();
  EXPECT_TRUE(CollectParameters(bound).empty());
  EXPECT_EQ(bound->ToString(), scenario_->Q1()->ToString());

  QueryResult result = Execute(bound, &env(), &streams(), 1).ValueOrDie();
  EXPECT_EQ(result.actions.size(), 2u);

  // Rebind the same template for a different recipient set.
  PlanPtr rebound =
      BindParameters(prepared, {{"msg", Value::String("Ciao")},
                                {"who", Value::String("Nicolas")}})
          .ValueOrDie();
  scenario_->ClearOutboxes();
  ASSERT_TRUE(Execute(rebound, &env(), &streams(), 2).ok());
  for (const SentMessage& m : scenario_->AllSentMessages()) {
    EXPECT_EQ(m.text, "Ciao");
    EXPECT_NE(m.address, "nicolas@elysee.fr");
  }
}

TEST_F(ParametersTest, RenderingRoundTrips) {
  const char* text =
      "assign[text := :msg](select[name = :who and temperature > "
      ":limit](contacts))";
  PlanPtr plan = ParseAlgebra(text).ValueOrDie();
  // Conjunctions render parenthesized; what matters is a stable fixpoint.
  PlanPtr reparsed = ParseAlgebra(plan->ToString()).ValueOrDie();
  EXPECT_EQ(reparsed->ToString(), plan->ToString());
  EXPECT_EQ(CollectParameters(reparsed),
            (std::set<std::string>{"msg", "who", "limit"}));
}

TEST_F(ParametersTest, UnboundExecutionFailsCleanly) {
  PlanPtr prepared =
      ParseAlgebra("select[name = :who](contacts)").ValueOrDie();
  EXPECT_EQ(Execute(prepared, &env(), &streams()).status().code(),
            StatusCode::kFailedPrecondition);
  PlanPtr assign =
      ParseAlgebra("assign[text := :msg](contacts)").ValueOrDie();
  EXPECT_EQ(Execute(assign, &env(), &streams()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ParametersTest, BindingValidation) {
  PlanPtr prepared =
      ParseAlgebra("select[name = :who](contacts)").ValueOrDie();
  // Missing binding.
  EXPECT_EQ(BindParameters(prepared, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Unknown binding.
  EXPECT_EQ(BindParameters(prepared, {{"who", Value::String("x")},
                                      {"ghost", Value::Int(1)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Type errors surface at execution, as with any constant.
  PlanPtr bound =
      BindParameters(prepared, {{"who", Value::String("Carla")}})
          .ValueOrDie();
  EXPECT_TRUE(Execute(bound, &env(), &streams()).ok());
}

TEST_F(ParametersTest, SharedSubtreesRebindConsistently) {
  // The same parameterized subtree under a union binds everywhere.
  PlanPtr leaf = ParseAlgebra("select[name = :who](contacts)").ValueOrDie();
  PlanPtr plan = UnionOf(leaf, leaf);
  PlanPtr bound =
      BindParameters(plan, {{"who", Value::String("Carla")}}).ValueOrDie();
  QueryResult result = Execute(bound, &env(), &streams()).ValueOrDie();
  EXPECT_EQ(result.relation.size(), 1u);
}

TEST_F(ParametersTest, BindingLeavesTemplateUntouched) {
  PlanPtr prepared =
      ParseAlgebra("select[name = :who](contacts)").ValueOrDie();
  (void)BindParameters(prepared, {{"who", Value::String("Carla")}});
  // The immutable template still carries its parameter.
  EXPECT_EQ(CollectParameters(prepared),
            (std::set<std::string>{"who"}));
}

TEST_F(ParametersTest, ParameterAssignTypeCheckedAtExecution) {
  PlanPtr prepared =
      ParseAlgebra("assign[text := :msg](contacts)").ValueOrDie();
  PlanPtr bound =
      BindParameters(prepared, {{"msg", Value::Int(42)}}).ValueOrDie();
  // text is STRING; the bound Int fails like any constant mismatch.
  EXPECT_EQ(Execute(bound, &env(), &streams()).status().code(),
            StatusCode::kTypeMismatch);
}

}  // namespace
}  // namespace serena
