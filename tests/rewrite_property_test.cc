#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"
#include "service/lambda_service.h"

namespace serena {
namespace {

/// Property-based validation of the Table 5 rewriting rules: for randomized
/// environments (random relation contents, random formulas, random
/// constants), every rewrite the rule engine performs must preserve
/// Def. 9 equivalence — same result X-Relation AND same action set.
///
/// The environment has one extended relation `items` with a passive
/// binding pattern (compute) and one with an active pattern (notify), plus
/// a plain relation `tags` for join cases. Service outputs are a pure
/// deterministic function of (input, instant).
class RewritePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());

    compute_ = Prototype::Create(
                   "compute",
                   RelationSchema::Create({{"a", DataType::kInt}})
                       .ValueOrDie(),
                   RelationSchema::Create({{"x", DataType::kInt},
                                           {"y", DataType::kReal}})
                       .ValueOrDie(),
                   /*active=*/false)
                   .ValueOrDie();
    notify_ = Prototype::Create(
                  "notify",
                  RelationSchema::Create({{"b", DataType::kString}})
                      .ValueOrDie(),
                  RelationSchema::Create({{"ack", DataType::kBool}})
                      .ValueOrDie(),
                  /*active=*/true)
                  .ValueOrDie();
    ASSERT_TRUE(env_.AddPrototype(compute_).ok());
    ASSERT_TRUE(env_.AddPrototype(notify_).ok());

    // Two worker services; tuples reference either.
    for (const char* id : {"worker0", "worker1"}) {
      auto svc = std::make_shared<LambdaService>(id);
      const std::uint64_t salt = StableHashOf(id);
      svc->AddMethod(compute_, [salt](const Tuple& input, Timestamp now) {
        const std::int64_t a = input[0].int_value();
        const std::uint64_t h =
            Mix64(salt ^ static_cast<std::uint64_t>(a * 131 + now));
        return Result<std::vector<Tuple>>(std::vector<Tuple>{
            Tuple{Value::Int(static_cast<std::int64_t>(h % 100)),
                  Value::Real(static_cast<double>(h % 1000) / 10.0)}});
      });
      svc->AddMethod(notify_, [](const Tuple&, Timestamp) {
        return Result<std::vector<Tuple>>(
            std::vector<Tuple>{Tuple{Value::Bool(true)}});
      });
      ASSERT_TRUE(env_.registry().Register(svc).ok());
    }

    auto items_schema =
        ExtendedSchema::Create(
            "items",
            {{"id", DataType::kInt},
             {"a", DataType::kInt},
             {"b", DataType::kString},
             {"svc", DataType::kService},
             {"x", DataType::kInt, AttributeKind::kVirtual},
             {"y", DataType::kReal, AttributeKind::kVirtual},
             {"ack", DataType::kBool, AttributeKind::kVirtual}},
            {BindingPattern(compute_, "svc"),
             BindingPattern(notify_, "svc")})
            .ValueOrDie();
    ASSERT_TRUE(env_.AddRelation(items_schema).ok());
    XRelation* items = env_.GetMutableRelation("items").ValueOrDie();
    const int n = 5 + static_cast<int>(rng.NextBounded(25));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          items
              ->Insert(Tuple{
                  Value::Int(i), Value::Int(rng.NextInt(0, 9)),
                  Value::String(std::string("tag") +
                                std::to_string(rng.NextBounded(4))),
                  Value::String(rng.NextBool(0.5) ? "worker0" : "worker1")})
              .ok());
    }

    auto tags_schema =
        ExtendedSchema::Create("tags", {{"b", DataType::kString},
                                        {"weight", DataType::kInt}})
            .ValueOrDie();
    ASSERT_TRUE(env_.AddRelation(tags_schema).ok());
    XRelation* tags = env_.GetMutableRelation("tags").ValueOrDie();
    for (int t = 0; t < 4; ++t) {
      ASSERT_TRUE(tags
                      ->Insert(Tuple{
                          Value::String("tag" + std::to_string(t)),
                          Value::Int(rng.NextInt(1, 5))})
                      .ok());
    }

    rng_ = std::make_unique<Rng>(GetParam() ^ 0xabcdef);
  }

  static std::uint64_t StableHashOf(std::string_view s) {
    return StableHash(s);
  }

  /// A random conjunct over the real attributes {id, a, b}.
  FormulaPtr RandomConjunct() {
    switch (rng_->NextBounded(3)) {
      case 0:
        return Formula::Compare(
            Operand::Attr("id"),
            rng_->NextBool(0.5) ? CompareOp::kLt : CompareOp::kGe,
            Operand::Const(Value::Int(rng_->NextInt(0, 20))));
      case 1:
        return Formula::Compare(
            Operand::Attr("a"),
            rng_->NextBool(0.5) ? CompareOp::kLe : CompareOp::kGt,
            Operand::Const(Value::Int(rng_->NextInt(0, 9))));
      default:
        return Formula::Compare(
            Operand::Attr("b"),
            rng_->NextBool(0.5) ? CompareOp::kEq : CompareOp::kNe,
            Operand::Const(Value::String(
                "tag" + std::to_string(rng_->NextBounded(4)))));
    }
  }

  FormulaPtr RandomFormula() {
    FormulaPtr f = RandomConjunct();
    const std::uint64_t extra = rng_->NextBounded(3);
    for (std::uint64_t i = 0; i < extra; ++i) {
      f = Formula::And(f, RandomConjunct());
    }
    return f;
  }

  /// Asserts that rewriting `plan` preserves Def. 9 equivalence.
  void ExpectRewriteEquivalent(const PlanPtr& plan, Timestamp instant) {
    Rewriter rewriter(&env_, nullptr);
    auto optimized = rewriter.Optimize(plan);
    ASSERT_TRUE(optimized.ok()) << optimized.status();
    auto report =
        CheckEquivalence(plan, *optimized, &env_, nullptr, instant);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->equivalent())
        << "plan:      " << plan->ToString() << "\nrewritten: "
        << (*optimized)->ToString() << "\n" << report->ToString();
  }

  Environment env_;
  PrototypePtr compute_;
  PrototypePtr notify_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(RewritePropertyTest, SelectionOverPassiveInvoke) {
  for (int round = 0; round < 4; ++round) {
    PlanPtr plan =
        Select(Invoke(Scan("items"), "compute"), RandomFormula());
    ExpectRewriteEquivalent(plan, static_cast<Timestamp>(round));
  }
}

TEST_P(RewritePropertyTest, SelectionOverAssign) {
  for (int round = 0; round < 4; ++round) {
    PlanPtr plan = Select(
        Assign(Scan("items"), "x", Value::Int(rng_->NextInt(0, 50))),
        RandomFormula());
    ExpectRewriteEquivalent(plan, static_cast<Timestamp>(round));
  }
}

TEST_P(RewritePropertyTest, ProjectionOverInvoke) {
  PlanPtr keep_all = Project(Invoke(Scan("items"), "compute"),
                             {"a", "svc", "x", "y"});
  ExpectRewriteEquivalent(keep_all, 1);
  // Dropping an output attribute: the rule must not fire, but optimizing
  // must still be equivalence-preserving (identity).
  PlanPtr drop_output =
      Project(Invoke(Scan("items"), "compute"), {"a", "svc", "x"});
  ExpectRewriteEquivalent(drop_output, 2);
}

TEST_P(RewritePropertyTest, SelectionOverJoin) {
  for (int round = 0; round < 4; ++round) {
    PlanPtr plan =
        Select(Join(Scan("items"), Scan("tags")), RandomFormula());
    ExpectRewriteEquivalent(plan, static_cast<Timestamp>(round));
  }
}

TEST_P(RewritePropertyTest, SelectionOverActiveInvokePreservesActions) {
  // Any rewrite of a plan with an active invocation must keep the action
  // set identical — in particular σ must not cross the active β.
  PlanPtr plan = Select(Invoke(Scan("items"), "notify"), RandomFormula());
  ExpectRewriteEquivalent(plan, 5);
}

TEST_P(RewritePropertyTest, ComposedPipelineEquivalence) {
  // A deeper pipeline mixing all rules.
  PlanPtr plan = Select(
      Project(Select(Invoke(Scan("items"), "compute"), RandomFormula()),
              {"id", "a", "b", "svc", "x", "y"}),
      RandomFormula());
  ExpectRewriteEquivalent(plan, 6);
}

TEST_P(RewritePropertyTest, OptimizedPlanNeverCostsMore) {
  PlanPtr plan =
      Select(Invoke(Scan("items"), "compute"), RandomFormula());
  Rewriter rewriter(&env_, nullptr);
  PlanPtr optimized = rewriter.Optimize(plan).ValueOrDie();
  auto before = EstimateCost(plan, env_, nullptr).ValueOrDie();
  auto after = EstimateCost(optimized, env_, nullptr).ValueOrDie();
  EXPECT_LE(after.Total(), before.Total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace serena
