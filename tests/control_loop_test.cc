// End-to-end sense -> decide -> actuate control loop built purely on the
// umbrella public API (the smart_home example as an asserted test): the
// environment's state changes *because* a declarative query invoked an
// ACTIVE prototype, and the closed loop converges.

#include "serena.h"

#include <cmath>

#include <gtest/gtest.h>

namespace serena {
namespace {

constexpr const char* kDdl = R"(
  PROTOTYPE getPower() : (watts REAL) STREAMING;
  PROTOTYPE setState(state STRING) : (changed BOOLEAN) ACTIVE;
  EXTENDED RELATION appliances (
    meter SERVICE, room STRING, priority INTEGER,
    watts REAL VIRTUAL, state STRING VIRTUAL, changed BOOLEAN VIRTUAL
  ) USING BINDING PATTERNS (
    getPower[meter]() : (watts),
    setState[meter](state) : (changed)
  );
  EXTENDED RELATION budget ( room STRING, max_watts REAL );
  INSERT INTO budget VALUES ('kitchen', 1000.0);
)";

ServicePtr MakeAppliance(const std::string& id, double base_watts,
                         PrototypePtr get_power, PrototypePtr set_state,
                         std::shared_ptr<bool> on) {
  auto svc = std::make_shared<LambdaService>(id);
  svc->AddMethod(get_power, [base_watts, on](const Tuple&, Timestamp) {
    return Result<std::vector<Tuple>>(std::vector<Tuple>{
        Tuple{Value::Real(*on ? base_watts : 1.0)}});
  });
  svc->AddMethod(set_state, [on](const Tuple& input, Timestamp) {
    const bool turn_on = input[0].string_value() == "on";
    const bool changed = (*on != turn_on);
    *on = turn_on;
    return Result<std::vector<Tuple>>(
        std::vector<Tuple>{Tuple{Value::Bool(changed)}});
  });
  return svc;
}

TEST(ControlLoopTest, BudgetEnforcementConverges) {
  auto pems = Pems::Create().MoveValueOrDie();
  ASSERT_TRUE(pems->tables().ExecuteDdl(kDdl).ok());
  auto get_power = pems->env().GetPrototype("getPower").ValueOrDie();
  auto set_state = pems->env().GetPrototype("setState").ValueOrDie();

  auto oven_on = std::make_shared<bool>(true);
  auto dishwasher_on = std::make_shared<bool>(true);
  ASSERT_TRUE(pems->Deploy("node", MakeAppliance("oven", 800.0, get_power,
                                                 set_state, oven_on))
                  .ok());
  ASSERT_TRUE(
      pems->Deploy("node", MakeAppliance("dishwasher", 600.0, get_power,
                                         set_state, dishwasher_on))
          .ok());
  for (const auto& [id, priority] :
       {std::pair{"oven", 9}, {"dishwasher", 3}}) {
    ASSERT_TRUE(pems->tables()
                    .InsertTuple("appliances",
                                 Tuple{Value::String(id),
                                       Value::String("kitchen"),
                                       Value::Int(priority)})
                    .ValueOrDie());
  }
  pems->Run(2);  // Discovery.

  // Kitchen total 1400 W > 1000 W budget: switch off low-priority
  // appliances in over-budget rooms.
  ASSERT_TRUE(
      pems->queries()
          .RegisterContinuous(
              "enforcer",
              "invoke[setState](assign[state := 'off'](select[priority <= 3 "
              "and total > max_watts](join(aggregate[room; sum(watts) -> "
              "total](invoke[getPower](appliances)), join(budget, "
              "invoke[getPower](appliances))))))")
          .ok());

  pems->Run(1);
  EXPECT_TRUE(pems->queries().executor().last_errors().empty());
  // The actuation really happened: the dishwasher is off, the oven stays.
  EXPECT_FALSE(*dishwasher_on);
  EXPECT_TRUE(*oven_on);

  // Next instants: kitchen at ~801 W, under budget — no more actions.
  auto enforcer = pems->queries().GetContinuous("enforcer").ValueOrDie();
  const std::size_t actions_after_first =
      enforcer->action_log().size();
  pems->Run(3);
  EXPECT_EQ(enforcer->action_log().size(), actions_after_first);
  EXPECT_FALSE(*dishwasher_on);

  // The audit log names the actuated service.
  ASSERT_FALSE(enforcer->action_log().empty());
  EXPECT_EQ(enforcer->action_log()[0].action.service_ref, "dishwasher");
  EXPECT_EQ(enforcer->action_log()[0].action.prototype, "setState");
}

TEST(ControlLoopTest, UmbrellaHeaderExposesTheWholeApi) {
  // Smoke-check that serena.h pulls in every layer used above plus the
  // analysis utilities.
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  PlanPtr plan = ParseAlgebra(
                     "aggregate[location; avg(temperature) -> mean]("
                     "invoke[getTemperature](sensors))")
                     .ValueOrDie();
  EXPECT_TRUE(IsValid(
      ValidatePlan(plan, scenario->env(), &scenario->streams())
          .ValueOrDie()));
  Rewriter rewriter(&scenario->env(), &scenario->streams());
  EXPECT_TRUE(rewriter.Optimize(plan).ok());
  EXPECT_FALSE(
      ExplainPlan(plan, scenario->env(), &scenario->streams()).empty());
  EXPECT_TRUE(ToCsv(*scenario->env().GetRelation("contacts").ValueOrDie())
                  .ok());
  EXPECT_FALSE(DumpEnvironment(scenario->env(), &scenario->streams())
                   .empty());
}

}  // namespace
}  // namespace serena
