// Tests for the offline script linter behind the `serena_lint` CLI.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint_runner.h"

namespace serena {
namespace {

bool HasCode(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

constexpr const char* kCatalog = R"(
# Comments vanish; the linter sees three statements here.
PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;

EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );

EXTENDED STREAM readings (value REAL);
)";

TEST(SplitScriptTest, StatementsCommentsAndDirectives) {
  const auto statements = SplitScript(
      "-- comment\n"
      "PROTOTYPE p() : (x INT);\n"
      "# another comment\n"
      "\\source readings\n"
      "select[name = 'semi;colon'](contacts);\n");
  ASSERT_EQ(statements.size(), 3u);
  EXPECT_EQ(statements[0], "PROTOTYPE p() : (x INT);");
  EXPECT_EQ(statements[1], "\\source readings");
  // A ';' inside a quoted literal does not split the statement.
  EXPECT_NE(statements[2].find("semi;colon"), std::string::npos);
}

TEST(SplitScriptTest, MultiLineStatementsJoined) {
  const auto statements = SplitScript("select[\n  value > 0\n](r);\n");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_NE(statements[0].find("value > 0"), std::string::npos);
}

TEST(LintRunnerTest, CleanScriptPasses) {
  const std::string script = std::string(kCatalog) +
      "\\source readings\n"
      "invoke[sendMessage](assign[text := 'hi'](contacts));\n"
      "\\register positive select[value > 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(result.ok()) << RenderDiagnostics(result.diagnostics);
  EXPECT_EQ(result.statements, 6);
}

TEST(LintRunnerTest, BrokenDdlReportsStatementNumber) {
  const LintResult result =
      LintScript("PROTOTYPE broken(((;").ValueOrDie();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
  // The finding anchors to the 1-based statement number.
  EXPECT_NE(result.diagnostics[0].ToString().find("statement 1"),
            std::string::npos);
}

TEST(LintRunnerTest, QueryFindingsSurfaceWithAnalyzerCodes) {
  const std::string script = std::string(kCatalog) +
      "select[text = 'hello'](contacts);\n"    // SER020: virtual read.
      "invoke[sendMessage](contacts);\n";       // SER007: unrealized input.
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kVirtualRead));
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kUnrealizedInput));
}

TEST(LintRunnerTest, SelfFeedingRegisterIsACycle) {
  const std::string script = std::string(kCatalog) +
      "\\register echo into readings "
      "select[value > 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kQueryCycle));
}

TEST(LintRunnerTest, DuplicateRegisterNameRejected) {
  const std::string script = std::string(kCatalog) +
      "\\source readings\n"
      "\\register q select[value > 0](window[1](readings))\n"
      "\\register q select[value < 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
}

TEST(LintRunnerTest, UnknownDirectivesIgnored) {
  const LintResult result =
      LintScript("\\tick 5\n\\show contacts\n").ValueOrDie();
  EXPECT_TRUE(result.ok());
}

TEST(LintRunnerTest, ParseErrorInQueryIsScriptStatement) {
  const std::string script =
      std::string(kCatalog) + "select[[[(contacts);\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
}

}  // namespace
}  // namespace serena
