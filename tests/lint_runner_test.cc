// Tests for the offline script linter behind the `serena_lint` CLI.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint_runner.h"

namespace serena {
namespace {

bool HasCode(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

constexpr const char* kCatalog = R"(
# Comments vanish; the linter sees three statements here.
PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;

EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );

EXTENDED STREAM readings (value REAL);
)";

TEST(SplitScriptTest, StatementsCommentsAndDirectives) {
  const auto statements = SplitScript(
      "-- comment\n"
      "PROTOTYPE p() : (x INT);\n"
      "# another comment\n"
      "\\source readings\n"
      "select[name = 'semi;colon'](contacts);\n");
  ASSERT_EQ(statements.size(), 3u);
  EXPECT_EQ(statements[0], "PROTOTYPE p() : (x INT);");
  EXPECT_EQ(statements[1], "\\source readings");
  // A ';' inside a quoted literal does not split the statement.
  EXPECT_NE(statements[2].find("semi;colon"), std::string::npos);
}

TEST(SplitScriptTest, MultiLineStatementsJoined) {
  const auto statements = SplitScript("select[\n  value > 0\n](r);\n");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_NE(statements[0].find("value > 0"), std::string::npos);
}

TEST(LintRunnerTest, CleanScriptPasses) {
  const std::string script = std::string(kCatalog) +
      "\\source readings\n"
      "invoke[sendMessage](assign[text := 'hi'](contacts));\n"
      "\\register positive select[value > 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(result.ok()) << RenderDiagnostics(result.diagnostics);
  EXPECT_EQ(result.statements, 6);
}

TEST(LintRunnerTest, BrokenDdlReportsStatementNumber) {
  const LintResult result =
      LintScript("PROTOTYPE broken(((;").ValueOrDie();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
  // The finding anchors to the 1-based statement number.
  EXPECT_NE(result.diagnostics[0].ToString().find("statement 1"),
            std::string::npos);
}

TEST(LintRunnerTest, QueryFindingsSurfaceWithAnalyzerCodes) {
  const std::string script = std::string(kCatalog) +
      "select[text = 'hello'](contacts);\n"    // SER020: virtual read.
      "invoke[sendMessage](contacts);\n";       // SER007: unrealized input.
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kVirtualRead));
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kUnrealizedInput));
}

TEST(LintRunnerTest, SelfFeedingRegisterIsACycle) {
  const std::string script = std::string(kCatalog) +
      "\\register echo into readings "
      "select[value > 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kQueryCycle));
}

TEST(LintRunnerTest, DuplicateRegisterNameRejected) {
  const std::string script = std::string(kCatalog) +
      "\\source readings\n"
      "\\register q select[value > 0](window[1](readings))\n"
      "\\register q select[value < 0](window[1](readings))\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
}

TEST(LintRunnerTest, UnknownDirectivesIgnored) {
  const LintResult result =
      LintScript("\\tick 5\n\\show contacts\n").ValueOrDie();
  EXPECT_TRUE(result.ok());
}

TEST(LintRunnerTest, ParseErrorInQueryIsScriptStatement) {
  const std::string script =
      std::string(kCatalog) + "select[[[(contacts);\n";
  const LintResult result = LintScript(script).ValueOrDie();
  EXPECT_TRUE(HasCode(result.diagnostics, DiagCode::kScriptStatement));
}

// ---------------------------------------------------------------------------
// --fix: structured fix-its, script rewriting, unified diffs
// ---------------------------------------------------------------------------

TEST(FixScriptTest, MisspelledRelationNameIsFixed) {
  const std::string script = std::string(kCatalog) +
      "select[name = 'Carla'](contact);\n";  // SER001 → contacts.
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_EQ(fixed.fixes_applied, 1);
  EXPECT_NE(fixed.script.find("(contacts);"), std::string::npos);
  EXPECT_EQ(fixed.script.find("(contact);"), std::string::npos);

  // The rewritten script lints clean where the original did not.
  EXPECT_TRUE(
      HasCode(LintScript(script).ValueOrDie().diagnostics,
              DiagCode::kUnknownRelation));
  EXPECT_FALSE(
      HasCode(LintScript(fixed.script).ValueOrDie().diagnostics,
              DiagCode::kUnknownRelation));
}

TEST(FixScriptTest, WindowlessStreamScanGetsWrapped) {
  const std::string script = std::string(kCatalog) +
      "select[value > 0](readings);\n";  // SER001: stream without window.
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_EQ(fixed.fixes_applied, 1);
  EXPECT_NE(fixed.script.find("select[value > 0](window[10](readings));"),
            std::string::npos);
}

TEST(FixScriptTest, ReplacementRespectsTokenBoundaries) {
  // "contact" must not match inside "contacts" — only the standalone
  // misspelling in the final statement is rewritten.
  const std::string script = std::string(kCatalog) +
      "invoke[sendMessage](assign[text := 'hi'](contacts));\n"
      "select[name = 'Ana'](contact);\n";
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_EQ(fixed.fixes_applied, 1);
  EXPECT_NE(fixed.script.find("assign[text := 'hi'](contacts)"),
            std::string::npos);
  EXPECT_NE(fixed.script.find("select[name = 'Ana'](contacts);"),
            std::string::npos);
}

TEST(FixScriptTest, CleanScriptIsUntouched) {
  const std::string script =
      std::string(kCatalog) + "select[name = 'Ana'](contacts);\n";
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_EQ(fixed.fixes_applied, 0);
  EXPECT_EQ(fixed.script, script);
}

TEST(FixScriptTest, DiagnosticsCarryStatementNumbersAndFixes) {
  const std::string script = std::string(kCatalog) +
      "select[name = 'Carla'](contact);\n";
  const LintResult result = LintScript(script).ValueOrDie();
  bool saw_fix = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code != DiagCode::kUnknownRelation) continue;
    saw_fix = true;
    EXPECT_TRUE(d.has_fix());
    EXPECT_EQ(d.fix_original, "contact");
    EXPECT_EQ(d.fix_replacement, "contacts");
    EXPECT_EQ(d.statement, 4);  // 1-based; three catalog statements first.
  }
  EXPECT_TRUE(saw_fix);
  // The JSON rendering exposes both for tooling.
  const std::string json = DiagnosticsToJson(result.diagnostics);
  EXPECT_NE(json.find("\"statement\":4"), std::string::npos);
  EXPECT_NE(json.find("\"fix\":{\"original\":\"contact\","
                      "\"replacement\":\"contacts\"}"),
            std::string::npos);
}

TEST(FixScriptTest, ExampleLintErrorsScriptIsPartiallyFixable) {
  std::ifstream in(std::string(SERENA_REPO_DIR) +
                   "/examples/scripts/lint_errors.serena");
  ASSERT_TRUE(in.good()) << "fixture missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string script = buffer.str();

  const LintResult before = LintScript(script).ValueOrDie();
  ASSERT_FALSE(before.ok());

  // The SER001 misspelling is mechanically fixable; the semantic
  // findings (SER020, SER007, SER040, ...) have no structured remedy
  // and must survive the rewrite.
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_EQ(fixed.fixes_applied, 1);
  const LintResult after = LintScript(fixed.script).ValueOrDie();
  EXPECT_FALSE(HasCode(after.diagnostics, DiagCode::kUnknownRelation));
  EXPECT_TRUE(HasCode(after.diagnostics, DiagCode::kVirtualRead));
  EXPECT_TRUE(HasCode(after.diagnostics, DiagCode::kQueryCycle));
  EXPECT_LT(CountErrors(after.diagnostics), CountErrors(before.diagnostics));

  // The dry-run diff for the same script shows the rename.
  const std::string diff = UnifiedDiff(script, fixed.script);
  EXPECT_NE(diff.find("-select[name = 'Carla'](contact);"),
            std::string::npos);
  EXPECT_NE(diff.find("+select[name = 'Carla'](contacts);"),
            std::string::npos);
}

TEST(FixScriptTest, FixIsIdempotentOverEveryExampleScript) {
  // `serena_lint --fix` must converge: fixing a fixed script changes
  // nothing and applies zero fixes — over every shipped example,
  // including the deliberately broken one.
  const std::string dir = std::string(SERENA_REPO_DIR) + "/examples/scripts/";
  const char* names[] = {"lint_errors.serena", "messaging.serena",
                         "self_monitoring.serena",
                         "temperature_watch.serena"};
  for (const char* name : names) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << "fixture missing: " << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const FixResult once = FixScript(buffer.str()).ValueOrDie();
    const FixResult twice = FixScript(once.script).ValueOrDie();
    EXPECT_EQ(twice.fixes_applied, 0) << name;
    EXPECT_EQ(twice.script, once.script) << name;
  }
}

TEST(FixScriptTest, MultipleFixesConvergeToAFixpoint) {
  // Several fixable findings across statements all land, and the result
  // is a fixpoint: re-running applies nothing further.
  const std::string script = std::string(kCatalog) +
      "select[name = 'Ana'](contact);\n"
      "select[value > 0](readings);\n";
  const FixResult fixed = FixScript(script).ValueOrDie();
  EXPECT_GE(fixed.fixes_applied, 2);
  EXPECT_NE(fixed.script.find("select[name = 'Ana'](contacts);"),
            std::string::npos);
  EXPECT_NE(fixed.script.find("select[value > 0](window[10](readings));"),
            std::string::npos);
  EXPECT_EQ(FixScript(fixed.script).ValueOrDie().fixes_applied, 0);
}

// ---------------------------------------------------------------------------
// Severity configuration through the lint runner
// ---------------------------------------------------------------------------

TEST(LintRunnerTest, SeverityConfigPromotesAndSuppresses) {
  // Q1'-shaped statement: SER030 (active invoke under a filter) is a
  // warning by default.
  const std::string script = std::string(kCatalog) +
      "select[name = 'Ana'](invoke[sendMessage]"
      "(assign[text := 'x'](contacts)));\n";
  const LintResult plain = LintScript(script).ValueOrDie();
  EXPECT_TRUE(plain.ok());
  EXPECT_TRUE(HasCode(plain.diagnostics, DiagCode::kActiveUnderFilter));

  const analysis::SeverityConfig werror =
      analysis::SeverityConfig::Parse("SER030", "").ValueOrDie();
  const LintResult strict = LintScript(script, werror).ValueOrDie();
  EXPECT_FALSE(strict.ok());  // promoted to an error

  const analysis::SeverityConfig quiet =
      analysis::SeverityConfig::Parse("", "SER030").ValueOrDie();
  const LintResult silenced = LintScript(script, quiet).ValueOrDie();
  EXPECT_FALSE(HasCode(silenced.diagnostics, DiagCode::kActiveUnderFilter));
}

TEST(UnifiedDiffTest, IdenticalTextsProduceEmptyDiff) {
  EXPECT_EQ(UnifiedDiff("a\nb\n", "a\nb\n"), "");
}

TEST(UnifiedDiffTest, SingleLineChangeWithContext) {
  const std::string before = "one\ntwo\nthree\nfour\nfive\nsix\nseven\n";
  const std::string after = "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\n";
  EXPECT_EQ(UnifiedDiff(before, after, "a/s.serena", "b/s.serena"),
            "--- a/s.serena\n"
            "+++ b/s.serena\n"
            "@@ -1,7 +1,7 @@\n"
            " one\n"
            " two\n"
            " three\n"
            "-four\n"
            "+FOUR\n"
            " five\n"
            " six\n"
            " seven\n");
}

TEST(UnifiedDiffTest, DistantChangesSplitIntoHunks) {
  std::string before;
  std::string after;
  for (int i = 0; i < 30; ++i) {
    const std::string line = "line" + std::to_string(i) + "\n";
    before += line;
    after += (i == 2 || i == 27) ? "CHANGED" + std::to_string(i) + "\n"
                                 : line;
  }
  const std::string diff = UnifiedDiff(before, after);
  // Two far-apart edits must not be merged into one hunk.
  EXPECT_EQ(std::count(diff.begin(), diff.end(), '@'), 8);
  EXPECT_NE(diff.find("-line2\n+CHANGED2\n"), std::string::npos);
  EXPECT_NE(diff.find("-line27\n+CHANGED27\n"), std::string::npos);
}

}  // namespace
}  // namespace serena
