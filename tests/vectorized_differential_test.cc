// Differential tests for the vectorized batch execution core
// (docs/VECTORIZATION.md): the scalar path behind SERENA_VECTORIZE=off
// is the oracle, and every observable output — result tables, action
// sets, action logs, per-tick sink captures, invocation retries — must
// be byte-identical between the two modes. Bag equality (Def. 4) and
// action-set equality (Def. 9) are checked through canonical renderings.

#include "algebra/vectorized.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint_runner.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "env/scenario.h"
#include "obs/meta.h"
#include "obs/stats.h"
#include "pems/pems.h"
#include "stream/executor.h"

namespace serena {
namespace {

/// Forces one vectorization mode for a scope, restoring the env-derived
/// default on exit.
class VecModeGuard {
 public:
  explicit VecModeGuard(bool enabled) {
    vec::SetEnabledForTesting(enabled);
  }
  ~VecModeGuard() { vec::SetEnabledForTesting(std::nullopt); }
};

// ---------------------------------------------------------------------------
// Script replay differential: every committed scenario script.
// ---------------------------------------------------------------------------

std::uint64_t MixHash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Value PumpValue(const Attribute& attr, std::uint64_t h) {
  switch (attr.type) {
    case DataType::kBool:
      return Value::Bool(h % 2 == 0);
    case DataType::kInt:
      return Value::Int(static_cast<std::int64_t>(h % 100));
    case DataType::kReal:
      return Value::Real(static_cast<double>(h % 1000) / 10.0);
    case DataType::kBlob:
      return Value::BlobValue(Blob{static_cast<std::uint8_t>(h % 256)});
    case DataType::kService:
    case DataType::kString:
      break;
  }
  static constexpr const char* kWords[] = {"office", "kitchen", "roof",
                                           "lobby",  "garage",  "corridor",
                                           "lab",    "hall"};
  return Value::String(kWords[h % (sizeof(kWords) / sizeof(kWords[0]))]);
}

/// The bench harness's deterministic pump (tools/serena_bench.cc): the
/// same (stream, instant, row) always yields the same tuple, so both
/// replays of a script see identical inputs.
void AddPump(Pems& pems, const std::string& stream, int rows_per_tick) {
  const std::uint64_t stream_seed = StableHash(stream);
  pems.queries().executor().AddSource(
      [&pems, stream, stream_seed, rows_per_tick](Timestamp t) -> Status {
        SERENA_ASSIGN_OR_RETURN(XDRelation * xd,
                                pems.streams().GetStream(stream));
        for (int k = 0; k < rows_per_tick; ++k) {
          const std::uint64_t row_seed =
              MixHash(stream_seed ^ MixHash(static_cast<std::uint64_t>(t) *
                                                0x10001ULL +
                                            static_cast<std::uint64_t>(k)));
          std::vector<Value> values;
          std::uint64_t attr_index = 0;
          for (const Attribute& attr : xd->schema().attributes()) {
            if (!attr.is_real()) continue;
            values.push_back(PumpValue(attr, MixHash(row_seed + attr_index)));
            ++attr_index;
          }
          SERENA_RETURN_NOT_OK(xd->Append(t, Tuple(std::move(values))));
        }
        return Status::OK();
      },
      {stream});
}

bool IsAllDigits(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool IsDdl(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  std::string lower;
  for (char c : head) lower.push_back(static_cast<char>(std::tolower(c)));
  return lower == "prototype" || lower == "service" || lower == "extended" ||
         lower == "insert" || lower == "delete" || lower == "drop";
}

/// Replays `script` under the current vectorization mode and renders
/// everything observable into one string: one-shot tables and actions,
/// every statement error, every per-tick sink capture of every
/// registered query, and each query's accumulated action set and
/// timestamped action log.
std::string ReplaySignature(const std::string& script) {
  std::ostringstream sig;
  // Sink captures accumulate per query: the executor may step queries of
  // one tick in any order (parallel scheduling), so interleaving is not
  // part of the signature — per-query content and instants are.
  std::map<std::string, std::string> captures;
  auto pems = Pems::Create().MoveValueOrDie();
  EXPECT_TRUE(
      obs::RegisterMetaRelations(&pems->env(), &pems->queries().executor())
          .ok());
  obs::StatsStore::Global().Clear();

  std::vector<std::string> registered;
  for (const std::string& statement : SplitScript(script)) {
    if (statement.empty()) continue;
    if (statement[0] != '\\') {
      if (IsDdl(statement)) {
        const Status status = pems->tables().ExecuteDdl(statement);
        sig << "ddl: " << (status.ok() ? "ok" : status.ToString()) << "\n";
      } else {
        std::string expr = statement;
        if (!expr.empty() && expr.back() == ';') expr.pop_back();
        auto result = pems->queries().ExecuteOneShot(expr);
        if (result.ok()) {
          sig << "oneshot:\n"
              << result->relation.ToTableString() << "actions: "
              << result->actions.ToString() << "\n";
        } else {
          sig << "oneshot error: " << result.status().ToString() << "\n";
        }
      }
      continue;
    }
    std::istringstream in(statement);
    std::string directive;
    in >> directive;
    if (directive == "\\register") {
      std::string query_name;
      in >> query_name;
      std::string rest;
      std::getline(in, rest);
      std::string expr(Trim(rest));
      std::string stream;
      if (expr.rfind("into ", 0) == 0) {
        std::istringstream tail(expr.substr(5));
        tail >> stream;
        std::string remainder;
        std::getline(tail, remainder);
        expr = std::string(Trim(remainder));
      }
      const Status status =
          stream.empty()
              ? pems->queries().RegisterContinuous(query_name, expr)
              : pems->queries().RegisterContinuousInto(query_name, expr,
                                                       stream);
      sig << "register " << query_name << ": "
          << (status.ok() ? "ok" : status.ToString()) << "\n";
      if (status.ok()) {
        registered.push_back(query_name);
        auto query = pems->queries().GetContinuous(query_name);
        if (query.ok()) {
          const std::string tag = query_name;
          (*query)->set_sink(
              [&captures, tag](Timestamp t, const XRelation& r) {
                captures[tag] += "tick " + std::to_string(t) + ":\n" +
                                 r.ToTableString();
              });
        }
      }
    } else if (directive == "\\source") {
      std::string token;
      std::string pending;
      while (in >> token) {
        if (!pending.empty() && IsAllDigits(token)) {
          AddPump(*pems, pending, std::max(1, std::atoi(token.c_str())));
          pending.clear();
          continue;
        }
        if (!pending.empty()) AddPump(*pems, pending, 4);
        pending = token;
      }
      if (!pending.empty()) AddPump(*pems, pending, 4);
    } else if (directive == "\\tick") {
      int n = 1;
      in >> n;
      if (n < 1) n = 1;
      for (int i = 0; i < n; ++i) pems->Tick();
    }
  }

  for (const auto& [tag, capture] : captures) {
    sig << "query " << tag << ":\n" << capture;
  }
  for (const std::string& query_name : registered) {
    auto query = pems->queries().GetContinuous(query_name);
    if (!query.ok()) continue;
    sig << "accumulated " << query_name << ": "
        << (*query)->accumulated_actions().ToString() << "\n";
    sig << "log " << query_name << ":";
    for (const auto& entry : (*query)->action_log()) {
      sig << " [" << entry.instant << "] " << entry.action.ToString();
    }
    sig << "\n";
  }
  return sig.str();
}

TEST(VectorizedDifferentialTest, ScriptsAreByteIdenticalAcrossModes) {
  const std::string dir =
      std::string(SERENA_REPO_DIR) + "/examples/scripts/";
  std::size_t scripts = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".serena") continue;
    const std::string name = entry.path().filename().string();
    if (name == "lint_errors.serena") continue;  // Exercises diagnostics.
    // self_monitoring queries the sys_* meta-relations, whose rows embed
    // wall-clock nanoseconds — identical row *counts* across modes (the
    // bench harness's exact records gate those) but never identical
    // bytes, in any mode, across any two replays.
    if (name == "self_monitoring.serena") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string script = buffer.str();

    std::string scalar;
    std::string vectorized;
    {
      VecModeGuard guard(false);
      scalar = ReplaySignature(script);
    }
    {
      VecModeGuard guard(true);
      vectorized = ReplaySignature(script);
    }
    EXPECT_EQ(scalar, vectorized) << "scenario " << name
                                  << " diverges between modes";
    ++scripts;
  }
  EXPECT_GE(scripts, 5u) << "expected the committed scenario scripts";
}

// ---------------------------------------------------------------------------
// Operator-shape differential: fused pipelines over the paper scenario.
// ---------------------------------------------------------------------------

/// Evaluates `plan` one-shot in both modes and renders the result (or
/// the error) canonically.
std::string OneShotSignature(const PlanPtr& plan, Environment* env,
                             StreamStore* streams, bool enabled,
                             Timestamp instant) {
  VecModeGuard guard(enabled);
  auto result = Execute(plan, env, streams, instant);
  if (!result.ok()) return "error: " + result.status().ToString();
  return result->relation.ToTableString() + "actions: " +
         result->actions.ToString();
}

class OperatorDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
    // A few instants of stream history for window shapes.
    for (Timestamp t = 1; t <= 4; ++t) {
      ASSERT_TRUE(scenario_->PumpTemperatureStream(t).ok());
    }
  }

  void ExpectParity(const PlanPtr& plan, Timestamp instant = 4) {
    const std::string scalar =
        OneShotSignature(plan, &scenario_->env(), &scenario_->streams(),
                         false, instant);
    const std::string vectorized =
        OneShotSignature(plan, &scenario_->env(), &scenario_->streams(),
                         true, instant);
    EXPECT_EQ(scalar, vectorized) << "plan " << plan->ToString();
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(OperatorDifferentialTest, SelectionChainsOverWindows) {
  // Deep σ-chain (merged to a flattened conjunction when optimized, and
  // evaluated conjunct-by-conjunct here): bands that pass, a band that
  // drops everything, string comparisons.
  PlanPtr window = Window("temperatures", 3);
  ExpectParity(Select(window, Formula::Compare(Operand::Attr("temperature"),
                                               CompareOp::kGt,
                                               Operand::Const(Value::Real(
                                                   -100.0)))));
  ExpectParity(Select(
      Select(Select(window,
                    Formula::Compare(Operand::Attr("temperature"),
                                     CompareOp::kGt,
                                     Operand::Const(Value::Real(-100.0)))),
             Formula::Compare(Operand::Attr("location"), CompareOp::kNe,
                              Operand::Const(Value::String("nowhere")))),
      Formula::Compare(Operand::Attr("temperature"), CompareOp::kLt,
                       Operand::Const(Value::Real(1000.0)))));
  // Selective tail: almost nothing materializes.
  ExpectParity(Select(window,
                      Formula::Compare(Operand::Attr("temperature"),
                                       CompareOp::kGt,
                                       Operand::Const(Value::Real(1e9)))));
}

TEST_F(OperatorDifferentialTest, NonConjunctiveFormulasUseGeneralPath) {
  PlanPtr window = Window("temperatures", 3);
  // OR and NOT cannot flatten — they compile to the general predicate.
  ExpectParity(Select(
      window,
      Formula::Or(Formula::Compare(Operand::Attr("location"), CompareOp::kEq,
                                   Operand::Const(Value::String("room1"))),
                  Formula::Compare(Operand::Attr("temperature"),
                                   CompareOp::kLt,
                                   Operand::Const(Value::Real(0.0))))));
  ExpectParity(Select(
      window,
      Formula::Not(Formula::Compare(Operand::Attr("location"),
                                    CompareOp::kEq,
                                    Operand::Const(Value::String("room1"))))));
}

TEST_F(OperatorDifferentialTest, ProjectRenameJoinShapes) {
  PlanPtr window = Window("temperatures", 3);
  // π deduplicates; ρ then joins against a catalog relation.
  ExpectParity(Project(window, {"location"}));
  ExpectParity(Join(Rename(window, "location", "area"), Scan("contacts")));
  ExpectParity(Project(
      Select(Join(Rename(window, "location", "area"), Scan("contacts")),
             Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                              Operand::Const(Value::Real(-100.0)))),
      {"area", "name"}));
}

TEST_F(OperatorDifferentialTest, ErrorPathsMatchScalarDiagnostics) {
  PlanPtr window = Window("temperatures", 3);
  // Unbound parameter: the pipeline build fails, the scalar fallback
  // raises the canonical diagnostic in both modes.
  ExpectParity(Select(window,
                      Formula::Compare(Operand::Attr("temperature"),
                                       CompareOp::kGt,
                                       Operand::Param("threshold"))));
  // Missing attribute.
  ExpectParity(Select(window,
                      Formula::Compare(Operand::Attr("no_such_attribute"),
                                       CompareOp::kEq,
                                       Operand::Const(Value::Int(1)))));
  // Type mismatch surfaces per tuple, from inside the fused loop.
  ExpectParity(Select(window,
                      Formula::Compare(Operand::Attr("location"),
                                       CompareOp::kGt,
                                       Operand::Const(Value::Int(42)))));
}

// ---------------------------------------------------------------------------
// Continuous differential: invocation failures and retries.
// ---------------------------------------------------------------------------

/// Runs the recovered-service retry flow (a standing query over
/// invoke[getTemperature](sensors) with sensor22 unreachable for the
/// first instants, then re-registered) and renders every per-tick result
/// and the action trail.
std::string RetryFlowSignature(bool enabled) {
  VecModeGuard guard(enabled);
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&scenario](Timestamp t) { return scenario->PumpTemperatureStream(t); });

  std::ostringstream sig;
  auto readings = std::make_shared<ContinuousQuery>(
      "readings", Invoke(Scan("sensors"), "getTemperature"));
  readings->set_sink([&sig](Timestamp t, const XRelation& r) {
    sig << "tick " << t << ":\n" << r.ToTableString();
  });
  EXPECT_TRUE(executor.Register(readings).ok());

  auto sensor22 = scenario->env().registry().Lookup("sensor22").ValueOrDie();
  EXPECT_TRUE(scenario->env().registry().Unregister("sensor22").ok());
  executor.Run(2);
  EXPECT_TRUE(scenario->env().registry().Register(sensor22).ok());
  executor.Run(2);

  sig << "accumulated: " << readings->accumulated_actions().ToString()
      << "\nlog:";
  for (const auto& entry : readings->action_log()) {
    sig << " [" << entry.instant << "] " << entry.action.ToString();
  }
  return sig.str();
}

TEST(VectorizedDifferentialTest, FailedInvocationRetriesMatchScalar) {
  EXPECT_EQ(RetryFlowSignature(false), RetryFlowSignature(true));
}

}  // namespace
}  // namespace serena
