#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "common/thread_pool.h"
#include "env/scenario.h"
#include "service/lambda_service.h"
#include "stream/executor.h"

namespace serena {
namespace {

RelationSchema Schema(std::vector<Attribute> attrs) {
  return RelationSchema::Create(std::move(attrs)).ValueOrDie();
}

/// probe(x INT) : (y INT) — passive, deterministic: y = x * 10 + service
/// index, so every (service, input) pair has a unique, checkable output.
PrototypePtr MakeProbePrototype() {
  return Prototype::Create("probe", Schema({{"x", DataType::kInt}}),
                           Schema({{"y", DataType::kInt}}),
                           /*active=*/false)
      .ValueOrDie();
}

/// A registry with `n` probe services (svc0..svc{n-1}); svc{i} maps x to
/// x*10+i after `latency`. Services named in `failing` return an error.
struct ProbeEnv {
  ServiceRegistry registry;
  PrototypePtr proto = MakeProbePrototype();
  std::atomic<int> physical_calls{0};

  explicit ProbeEnv(int n, std::chrono::milliseconds latency = {},
                    std::vector<std::string> failing = {}) {
    for (int i = 0; i < n; ++i) {
      const std::string id = "svc" + std::to_string(i);
      auto service = std::make_shared<LambdaService>(id);
      const bool fails =
          std::find(failing.begin(), failing.end(), id) != failing.end();
      service->AddMethod(
          proto, [this, i, latency, fails](const Tuple& input, Timestamp)
                     -> Result<std::vector<Tuple>> {
            physical_calls.fetch_add(1, std::memory_order_relaxed);
            if (latency.count() > 0) std::this_thread::sleep_for(latency);
            if (fails) return Status::Unavailable("svc down");
            return std::vector<Tuple>{Tuple{
                Value::Int(input[0].int_value() * 10 + i)}};
          });
      const Status registered = registry.Register(std::move(service));
      EXPECT_TRUE(registered.ok()) << registered.message();
    }
  }
};

/// An X-Relation of (svc, x, y*) rows bound to the probe prototype.
XRelation MakeProbeRelation(const std::vector<std::pair<int, int>>& rows) {
  auto schema =
      ExtendedSchema::Create(
          "probes",
          {{"svc", DataType::kService},
           {"x", DataType::kInt},
           {"y", DataType::kInt, AttributeKind::kVirtual}},
          {BindingPattern(MakeProbePrototype(), "svc")})
          .ValueOrDie();
  XRelation r(schema);
  for (const auto& [service_index, x] : rows) {
    (void)r.Insert(Tuple{Value::String("svc" + std::to_string(service_index)),
                         Value::Int(x)});
  }
  return r;
}

TEST(ParallelInvokeTest, ParallelOutputIsByteIdenticalToSerial) {
  std::vector<std::pair<int, int>> rows;
  for (int i = 0; i < 40; ++i) rows.push_back({i % 8, i});
  const XRelation input = MakeProbeRelation(rows);
  const BindingPattern& bp = input.schema().binding_patterns()[0];

  ProbeEnv serial_env(8);
  ThreadPool serial_pool(0);
  InvokeOptions serial_options;
  serial_options.instant = 1;
  serial_options.pool = &serial_pool;
  XRelation serial =
      Invoke(input, bp, &serial_env.registry, serial_options).ValueOrDie();

  ProbeEnv parallel_env(8);
  ThreadPool pool(4);
  InvokeOptions parallel_options;
  parallel_options.instant = 1;
  parallel_options.pool = &pool;
  XRelation parallel =
      Invoke(input, bp, &parallel_env.registry, parallel_options)
          .ValueOrDie();

  // Not just set equality: identical content in identical order.
  EXPECT_EQ(parallel.ToTableString(), serial.ToTableString());
  EXPECT_EQ(parallel.size(), input.size());

  // Identical traffic stats on the success path.
  const InvocationStats s = serial_env.registry.stats();
  const InvocationStats p = parallel_env.registry.stats();
  EXPECT_EQ(p.logical_invocations, s.logical_invocations);
  EXPECT_EQ(p.physical_invocations, s.physical_invocations);
  EXPECT_EQ(p.memo_hits, s.memo_hits);
  EXPECT_EQ(p.output_tuples, s.output_tuples);
}

TEST(ParallelInvokeTest, SkipPolicyCollectsFailedTuplesInInputOrder) {
  std::vector<std::pair<int, int>> rows;
  for (int i = 0; i < 12; ++i) rows.push_back({i % 4, i});
  const XRelation input = MakeProbeRelation(rows);
  const BindingPattern& bp = input.schema().binding_patterns()[0];

  auto run = [&](ThreadPool* pool) {
    ProbeEnv env(4, std::chrono::milliseconds(0), {"svc2"});
    InvokeOptions options;
    options.instant = 1;
    options.error_policy = InvocationErrorPolicy::kSkipTuple;
    options.pool = pool;
    std::vector<Tuple> failed;
    options.failed_tuples = &failed;
    XRelation out = Invoke(input, bp, &env.registry, options).ValueOrDie();
    return std::make_pair(out.ToTableString(), failed);
  };

  ThreadPool serial_pool(0);
  ThreadPool pool(4);
  const auto [serial_table, serial_failed] = run(&serial_pool);
  const auto [parallel_table, parallel_failed] = run(&pool);

  EXPECT_EQ(parallel_table, serial_table);
  ASSERT_EQ(parallel_failed.size(), serial_failed.size());
  EXPECT_EQ(parallel_failed.size(), 3u);  // i = 2, 6, 10 hit svc2.
  for (std::size_t i = 0; i < serial_failed.size(); ++i) {
    EXPECT_EQ(parallel_failed[i], serial_failed[i]);
  }
}

TEST(ParallelInvokeTest, FailPolicyReturnsGenuineErrorNotCancellation) {
  std::vector<std::pair<int, int>> rows;
  for (int i = 0; i < 16; ++i) rows.push_back({i % 4, i});
  const XRelation input = MakeProbeRelation(rows);
  const BindingPattern& bp = input.schema().binding_patterns()[0];

  ProbeEnv env(4, std::chrono::milliseconds(1), {"svc1"});
  ThreadPool pool(4);
  InvokeOptions options;
  options.instant = 1;
  options.error_policy = InvocationErrorPolicy::kFail;
  options.pool = &pool;
  const auto result = Invoke(input, bp, &env.registry, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // Never the internal cancellation marker.
  EXPECT_FALSE(ServiceRegistry::IsCancelled(result.status()));
}

TEST(ParallelInvokeTest, InvokeManyDedupsIdenticalRequestsWithinBatch) {
  ProbeEnv env(2);
  std::vector<InvocationRequest> requests;
  // 3x the same call to svc0, 2x svc1, 1x svc0 with other input.
  for (int i = 0; i < 3; ++i) requests.push_back({"svc0", Tuple{Value::Int(7)}});
  for (int i = 0; i < 2; ++i) requests.push_back({"svc1", Tuple{Value::Int(7)}});
  requests.push_back({"svc0", Tuple{Value::Int(8)}});

  ThreadPool pool(4);
  auto results = env.registry.InvokeMany(*env.proto, requests, 1, &pool);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  // Duplicates share the SAME underlying rows (no copies).
  EXPECT_EQ(results[0].ValueOrDie().get(), results[1].ValueOrDie().get());
  EXPECT_EQ(results[0].ValueOrDie().get(), results[2].ValueOrDie().get());
  EXPECT_EQ(results[3].ValueOrDie().get(), results[4].ValueOrDie().get());
  EXPECT_NE(results[0].ValueOrDie().get(), results[5].ValueOrDie().get());
  EXPECT_EQ((*results[0].ValueOrDie())[0][0], Value::Int(70));
  EXPECT_EQ((*results[3].ValueOrDie())[0][0], Value::Int(71));
  EXPECT_EQ((*results[5].ValueOrDie())[0][0], Value::Int(80));

  EXPECT_EQ(env.physical_calls.load(), 3);  // One per unique pair.
  const InvocationStats stats = env.registry.stats();
  EXPECT_EQ(stats.logical_invocations, 6u);
  EXPECT_EQ(stats.physical_invocations, 3u);
  EXPECT_EQ(stats.memo_hits, 3u);
}

TEST(ParallelInvokeTest, MemoHitReturnsSharedRowsAcrossCalls) {
  ProbeEnv env(1);
  auto first = env.registry.Invoke(*env.proto, "svc0", Tuple{Value::Int(1)}, 5);
  auto second =
      env.registry.Invoke(*env.proto, "svc0", Tuple{Value::Int(1)}, 5);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Satellite: the memo hit hands out the same vector, not a copy.
  EXPECT_EQ(first.ValueOrDie().get(), second.ValueOrDie().get());
  EXPECT_EQ(env.physical_calls.load(), 1);

  // A new instant invalidates the memo.
  auto third = env.registry.Invoke(*env.proto, "svc0", Tuple{Value::Int(1)}, 6);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first.ValueOrDie().get(), third.ValueOrDie().get());
  EXPECT_EQ(env.physical_calls.load(), 2);
}

TEST(ParallelInvokeTest, ExecutorTicksManyQueriesSharingOneRegistry) {
  // Stress: 8 standing queries (4 clones each of Q3 and Q4) over one
  // scenario — one shared, thread-safe registry + stream store — stepped
  // by a parallel pool for many ticks. The scenario is fully
  // deterministic (seeded hashes of the instant), so a serial run with a
  // single Q3 + Q4 is the ground truth: single-flight memoization must
  // collapse the clones' duplicate active invocations to exactly the
  // side effects one query would cause.
  auto run = [](int clones, std::size_t threads) {
    auto scenario = TemperatureScenario::Build().MoveValueOrDie();
    ContinuousExecutor executor(&scenario->env(), &scenario->streams());
    executor.AddSource(
        [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });

    ThreadPool pool(threads);
    executor.set_pool(&pool);
    for (int i = 0; i < clones; ++i) {
      EXPECT_TRUE(executor
                      .Register(std::make_shared<ContinuousQuery>(
                          "q3-" + std::to_string(i), scenario->Q3()))
                      .ok());
      EXPECT_TRUE(executor
                      .Register(std::make_shared<ContinuousQuery>(
                          "q4-" + std::to_string(i), scenario->Q4()))
                      .ok());
    }

    scenario->sensors()[1]->set_bias(20.0);   // Office hot -> alerts.
    executor.Run(25);

    EXPECT_TRUE(executor.last_errors().empty());
    EXPECT_EQ(executor.total_query_errors(), 0u);
    EXPECT_EQ(executor.total_ticks(), 25u);
    for (const std::string& name : executor.QueryNames()) {
      EXPECT_EQ(executor.GetQuery(name).ValueOrDie()->steps(), 25u);
    }
    std::size_t photos = 0;
    for (const auto& camera : scenario->cameras()) {
      photos += camera->photos_taken();
    }
    return std::make_pair(scenario->AllSentMessages().size(), photos);
  };

  const auto [serial_messages, serial_photos] = run(/*clones=*/1,
                                                    /*threads=*/0);
  const auto [parallel_messages, parallel_photos] = run(/*clones=*/4,
                                                        /*threads=*/8);

  // The heated office really produced traffic...
  EXPECT_GT(serial_messages, 0u);
  // ...and 4x the queries stepped in parallel caused exactly 1x the
  // physical side effects.
  EXPECT_EQ(parallel_messages, serial_messages);
  EXPECT_EQ(parallel_photos, serial_photos);
}

TEST(ParallelInvokeTest, DerivedStreamPipelineKeepsProducerBeforeConsumer) {
  // Two-stage pipeline: a producer feeding a derived stream and a
  // consumer windowing it must land in different executor levels, so the
  // parallel tick preserves the serial producer->consumer order.
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());

  auto producer =
      std::make_shared<ContinuousQuery>("producer", scenario->Q3());
  producer->set_feeds({"alerts"});
  ASSERT_TRUE(executor.Register(producer).ok());

  auto consumer =
      std::make_shared<ContinuousQuery>("consumer", scenario->Q3());
  // The consumer nominally "reads" nothing the producer feeds here (Q3
  // windows `temperatures`), so declare a feed conflict instead: both
  // writing `alerts` must still serialize.
  consumer->set_feeds({"alerts"});
  ASSERT_TRUE(executor.Register(consumer).ok());

  ThreadPool pool(4);
  executor.set_pool(&pool);
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  executor.Run(3);
  EXPECT_TRUE(executor.last_errors().empty());
}

}  // namespace
}  // namespace serena
