#include "types/value.h"

#include <gtest/gtest.h>

#include "types/tuple.h"

namespace serena {
namespace {

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-42).int_value(), -42);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).real_value(), 3.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_EQ(Value::BlobValue(Blob{1, 2, 3}).blob_value().size(), 3u);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt);
  EXPECT_EQ(Value::Real(1.0).type(), DataType::kReal);
  EXPECT_EQ(Value::String("s").type(), DataType::kString);
  EXPECT_EQ(Value::BlobValue({}).type(), DataType::kBlob);
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Real(1.0).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Real(2.0));
  EXPECT_NE(Value::Int(2), Value::Real(2.5));
  EXPECT_NE(Value::Int(2), Value::String("2"));
  EXPECT_NE(Value::Bool(true), Value::Int(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
  EXPECT_EQ(Value::Real(-0.0).Hash(), Value::Real(0.0).Hash());
  EXPECT_EQ(Value::Real(-0.0), Value::Real(0.0));
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
}

TEST(ValueTest, Ordering) {
  // Within types.
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
  // Cross-type rank: bool < numeric < string < blob.
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::String(""));
  EXPECT_LT(Value::String("zzz"), Value::BlobValue({}));
}

TEST(ValueTest, ConformsToAndCoerce) {
  EXPECT_TRUE(Value::Int(1).ConformsTo(DataType::kInt));
  EXPECT_TRUE(Value::Int(1).ConformsTo(DataType::kReal));  // Widening.
  EXPECT_FALSE(Value::Real(1.0).ConformsTo(DataType::kInt));
  EXPECT_TRUE(Value::String("svc").ConformsTo(DataType::kService));
  EXPECT_FALSE(Value::Bool(true).ConformsTo(DataType::kString));
  const Value widened = Value::Int(3).CoerceTo(DataType::kReal);
  EXPECT_TRUE(widened.is_real());
  EXPECT_DOUBLE_EQ(widened.real_value(), 3.0);
  // Coercion elsewhere is identity.
  EXPECT_TRUE(Value::String("x").CoerceTo(DataType::kBlob).is_string());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Real(35.5).ToString(), "35.5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::BlobValue(Blob(10)).ToString(), "<blob:10>");
}

TEST(ValueTest, ParseLiterals) {
  EXPECT_EQ(ParseValueLiteral("true", DataType::kBool).ValueOrDie(),
            Value::Bool(true));
  EXPECT_EQ(ParseValueLiteral("-12", DataType::kInt).ValueOrDie(),
            Value::Int(-12));
  EXPECT_EQ(ParseValueLiteral("35.5", DataType::kReal).ValueOrDie(),
            Value::Real(35.5));
  EXPECT_EQ(ParseValueLiteral("'quoted'", DataType::kString).ValueOrDie(),
            Value::String("quoted"));
  EXPECT_EQ(ParseValueLiteral("bare", DataType::kString).ValueOrDie(),
            Value::String("bare"));
  EXPECT_FALSE(ParseValueLiteral("notanint", DataType::kInt).ok());
  EXPECT_FALSE(ParseValueLiteral("maybe", DataType::kBool).ok());
  EXPECT_FALSE(ParseValueLiteral("", DataType::kString).ok());
  EXPECT_FALSE(ParseValueLiteral("'unterminated", DataType::kString).ok());
  EXPECT_FALSE(ParseValueLiteral("x", DataType::kBlob).ok());
}

TEST(TupleTest, ProjectConcatAndCompare) {
  Tuple t{Value::Int(1), Value::String("a"), Value::Real(2.5)};
  EXPECT_EQ(t.size(), 3u);
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p, (Tuple{Value::Real(2.5), Value::Int(1)}));
  Tuple c = t.Concat(Tuple{Value::Bool(true)});
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c[3], Value::Bool(true));
  EXPECT_LT((Tuple{Value::Int(1)}), (Tuple{Value::Int(2)}));
  EXPECT_LT((Tuple{Value::Int(1)}), (Tuple{Value::Int(1), Value::Int(0)}));
  EXPECT_EQ(t.ToString(), "(1, 'a', 2.5)");
}

TEST(TupleTest, HashConsistency) {
  Tuple a{Value::Int(2), Value::String("x")};
  Tuple b{Value::Real(2.0), Value::String("x")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Tuple c{Value::String("x"), Value::Int(2)};  // Order matters.
  EXPECT_NE(a, c);
}

TEST(DataTypeTest, Roundtrip) {
  for (DataType type :
       {DataType::kBool, DataType::kInt, DataType::kReal, DataType::kString,
        DataType::kBlob, DataType::kService}) {
    EXPECT_EQ(DataTypeFromString(DataTypeToString(type)).ValueOrDie(), type);
  }
  EXPECT_EQ(DataTypeFromString("int").ValueOrDie(), DataType::kInt);
  EXPECT_EQ(DataTypeFromString("Double").ValueOrDie(), DataType::kReal);
  EXPECT_FALSE(DataTypeFromString("tensor").ok());
}

TEST(DataTypeTest, Assignability) {
  EXPECT_TRUE(IsAssignableTo(DataType::kInt, DataType::kReal));
  EXPECT_FALSE(IsAssignableTo(DataType::kReal, DataType::kInt));
  EXPECT_TRUE(IsAssignableTo(DataType::kString, DataType::kService));
  EXPECT_TRUE(IsAssignableTo(DataType::kService, DataType::kString));
  EXPECT_FALSE(IsAssignableTo(DataType::kBool, DataType::kInt));
}

}  // namespace
}  // namespace serena
