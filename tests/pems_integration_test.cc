#include "pems/pems.h"

#include <gtest/gtest.h>

#include "env/sim_services.h"

namespace serena {
namespace {

constexpr const char* kPrototypesDdl = R"(
  PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
  PROTOTYPE getTemperature() : (temperature REAL);
  EXTENDED RELATION contacts (
    name STRING, address STRING, text STRING VIRTUAL,
    messenger SERVICE, sent BOOLEAN VIRTUAL
  ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
)";

/// Full Figure 1 stack: DDL through the Extended Table Manager, devices
/// deployed on Local ERMs, UPnP-style discovery into the core ERM,
/// discovery queries, and Serena Algebra Language execution through the
/// Query Processor.
class PemsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pems_ = Pems::Create().MoveValueOrDie();
    ASSERT_TRUE(pems_->tables().ExecuteDdl(kPrototypesDdl).ok());
  }

  std::unique_ptr<Pems> pems_;
};

TEST_F(PemsIntegrationTest, DiscoveryMakesDeployedServicesVisible) {
  auto sensor =
      std::make_shared<TemperatureSensorService>("sensor01", 20.0, 1);
  ASSERT_TRUE(pems_->Deploy("node-corridor", std::move(sensor)).ok());
  // Before any tick, the announcement is still in flight.
  EXPECT_FALSE(pems_->env().registry().Contains("sensor01"));
  pems_->Run(2);  // Latency is at most 1 instant.
  EXPECT_TRUE(pems_->env().registry().Contains("sensor01"));
  EXPECT_EQ(pems_->erm().services_discovered(), 1u);
}

TEST_F(PemsIntegrationTest, RemoteInvocationThroughProxy) {
  ASSERT_TRUE(
      pems_->Deploy("node-a", std::make_shared<TemperatureSensorService>(
                                  "sensor01", 20.0, 1))
          .ok());
  pems_->Run(2);
  // Discovery query materializes a queryable relation.
  ASSERT_TRUE(pems_->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  QueryResult result =
      pems_->queries()
          .ExecuteOneShot("invoke[getTemperature](thermometers)")
          .ValueOrDie();
  ASSERT_EQ(result.relation.size(), 1u);
  EXPECT_TRUE(result.relation.schema().IsReal("temperature"));
  EXPECT_GT(pems_->network().stats().invocation_round_trips, 0u);
}

TEST_F(PemsIntegrationTest, DiscoveryQueryTracksDeparture) {
  auto erm = pems_->CreateLocalErm("node-a").MoveValueOrDie();
  ASSERT_TRUE(erm->Host(0, std::make_shared<TemperatureSensorService>(
                               "sensor01", 20.0, 1))
                  .ok());
  ASSERT_TRUE(erm->Host(0, std::make_shared<TemperatureSensorService>(
                               "sensor02", 21.0, 2))
                  .ok());
  pems_->Run(2);
  ASSERT_TRUE(pems_->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  EXPECT_EQ(pems_->tables().RelationSize("thermometers").ValueOrDie(), 2u);

  // sensor02 disappears (byebye message).
  ASSERT_TRUE(erm->Evict(pems_->env().clock().now(), "sensor02").ok());
  pems_->Run(2);
  EXPECT_EQ(pems_->tables().RelationSize("thermometers").ValueOrDie(), 1u);
  EXPECT_EQ(pems_->erm().services_lost(), 1u);
}

TEST_F(PemsIntegrationTest, InvocationOnDepartedServiceSkipsGracefully) {
  auto erm = pems_->CreateLocalErm("node-a").MoveValueOrDie();
  ASSERT_TRUE(erm->Host(0, std::make_shared<TemperatureSensorService>(
                               "sensor01", 20.0, 1))
                  .ok());
  pems_->Run(2);
  ASSERT_TRUE(pems_->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  // The device vanishes without a byebye (crash): the registry still has
  // the proxy, but invocation fails; continuous queries must survive.
  ASSERT_TRUE(erm->Evict(pems_->env().clock().now(), "sensor01").ok());
  ASSERT_TRUE(pems_->queries()
                  .RegisterContinuous("watch",
                                      "invoke[getTemperature](thermometers)")
                  .ok());
  pems_->Tick();  // Byebye may still be in flight: proxy lookup fails.
  EXPECT_TRUE(pems_->queries().executor().last_errors().empty());
}

TEST_F(PemsIntegrationTest, EndToEndAlertScenarioThroughLanguages) {
  // Messengers and a hot sensor, all discovered over the network.
  auto messenger = std::make_shared<MessengerService>(
      "email", MessengerService::Kind::kEmail);
  ASSERT_TRUE(pems_->Deploy("node-gateway", messenger).ok());
  ASSERT_TRUE(
      pems_->Deploy("node-office", std::make_shared<TemperatureSensorService>(
                                       "sensor06", 60.0, 3))
          .ok());
  pems_->Run(2);

  // Populate contacts through the Extended Table Manager.
  ASSERT_TRUE(pems_->tables()
                  .InsertTuple("contacts",
                               Tuple{Value::String("Carla"),
                                     Value::String("carla@elysee.fr"),
                                     Value::String("email")})
                  .ValueOrDie());

  // Discovery + temperature stream via a source, all in Serena languages.
  ASSERT_TRUE(pems_->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  ASSERT_TRUE(pems_->tables().ExecuteDdl(
                  "EXTENDED STREAM temperatures (temperature REAL);")
                  .ok());
  pems_->queries().executor().AddSource([this](Timestamp t) -> Status {
    auto readings = pems_->queries().ExecuteOneShot(
        "project[temperature](invoke[getTemperature](thermometers))");
    SERENA_RETURN_NOT_OK(readings.status());
    for (const Tuple& tuple : readings->relation.tuples()) {
      SERENA_RETURN_NOT_OK(
          pems_->tables().AppendToStream("temperatures", t, tuple));
    }
    return Status::OK();
  });

  // The standing alert query, written in the Serena Algebra Language.
  ASSERT_TRUE(
      pems_->queries()
          .RegisterContinuous(
              "alerts",
              "invoke[sendMessage](assign[text := 'Hot!'](join(select["
              "temperature > 35.5](window[1](temperatures)), contacts)))")
          .ok());

  pems_->Run(3);
  EXPECT_TRUE(pems_->queries().executor().last_errors().empty());
  ASSERT_FALSE(messenger->outbox().empty());
  EXPECT_EQ(messenger->outbox()[0].address, "carla@elysee.fr");
  EXPECT_EQ(messenger->outbox()[0].text, "Hot!");
  // The standing query accumulated actions (Def. 8).
  EXPECT_FALSE(pems_->queries()
                   .GetContinuous("alerts")
                   .ValueOrDie()
                   ->accumulated_actions()
                   .empty());
}

TEST(PemsLeaseTest, SilentCrashExpiresAfterTtl) {
  // A device that crashes without a byebye must eventually disappear from
  // the registry: UPnP-style leases with periodic re-announcement.
  Pems::Options options;
  options.network.min_latency = 0;
  options.network.max_latency = 0;
  options.announcement_ttl = 3;
  options.reannounce_interval = 1;
  auto pems = Pems::Create(options).MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl("PROTOTYPE getTemperature() : "
                              "(temperature REAL);")
                  .ok());
  auto erm = pems->CreateLocalErm("node").MoveValueOrDie();
  ASSERT_TRUE(erm->Host(0, std::make_shared<TemperatureSensorService>(
                               "sensor01", 20.0, 1))
                  .ok());
  pems->Run(4);
  EXPECT_TRUE(pems->env().registry().Contains("sensor01"));

  // Silent crash: the node dies without a byebye; alive messages stop.
  erm.reset();
  ASSERT_TRUE(pems->CrashNode("node").ok());
  pems->Run(2);
  EXPECT_TRUE(pems->env().registry().Contains("sensor01"));  // Lease holds.
  pems->Run(3);  // TTL (3) exceeded without renewal.
  EXPECT_FALSE(pems->env().registry().Contains("sensor01"));
  EXPECT_EQ(pems->erm().services_expired(), 1u);
}

TEST(PemsLeaseTest, ReannouncementKeepsServiceAlive) {
  Pems::Options options;
  options.network.min_latency = 0;
  options.network.max_latency = 0;
  options.announcement_ttl = 2;
  options.reannounce_interval = 1;
  auto pems = Pems::Create(options).MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl("PROTOTYPE getTemperature() : "
                              "(temperature REAL);")
                  .ok());
  ASSERT_TRUE(
      pems->Deploy("node", std::make_shared<TemperatureSensorService>(
                               "sensor01", 20.0, 1))
          .ok());
  pems->Run(10);  // Far beyond the TTL.
  EXPECT_TRUE(pems->env().registry().Contains("sensor01"));
  EXPECT_EQ(pems->erm().services_expired(), 0u);
}

TEST_F(PemsIntegrationTest, LateSensorJoinsRunningQuery) {
  ASSERT_TRUE(pems_->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  std::size_t last_count = 0;
  ASSERT_TRUE(pems_->queries()
                  .RegisterContinuous(
                      "readings", "invoke[getTemperature](thermometers)",
                      [&](Timestamp, const XRelation& r) {
                        last_count = r.size();
                      })
                  .ok());
  pems_->Run(2);
  EXPECT_EQ(last_count, 0u);  // No thermometers yet.

  ASSERT_TRUE(
      pems_->Deploy("node-roof", std::make_shared<TemperatureSensorService>(
                                     "sensor22", 14.0, 4))
          .ok());
  pems_->Run(2);
  EXPECT_EQ(last_count, 1u);  // Integrated without restarting the query.
}

}  // namespace
}  // namespace serena
