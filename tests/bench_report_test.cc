// Tests for the shared BENCH_*.json schema (bench/bench_report.h):
// serialization roundtrip, v1 compatibility, and the compare semantics
// that back the serena_bench perf-regression gate.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_report.h"

namespace serena {
namespace bench {
namespace {

BenchReport MakeReport() {
  BenchReport report;
  report.name = "scenario_demo";
  report.kind = "scenario";
  report.records = {
      {"rows", 42.0, "", RecordMode::kExact},
      {"ticks", 8.0, "", RecordMode::kExact},
      {"wall", 120.0, "ms", RecordMode::kTiming},
  };
  return report;
}

TEST(BenchReportTest, JsonRoundtrip) {
  const BenchReport report = MakeReport();
  const std::string json = BenchReportJson(report);
  const Result<BenchReport> parsed = ParseBenchReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const BenchReport& loaded = parsed.ValueOrDie();
  EXPECT_EQ(loaded.schema_version, kBenchSchemaVersion);
  EXPECT_EQ(loaded.name, "scenario_demo");
  EXPECT_EQ(loaded.kind, "scenario");
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.records[0].name, "rows");
  EXPECT_EQ(loaded.records[0].value, 42.0);
  EXPECT_EQ(loaded.records[0].mode, RecordMode::kExact);
  EXPECT_EQ(loaded.records[2].unit, "ms");
  EXPECT_EQ(loaded.records[2].mode, RecordMode::kTiming);
}

TEST(BenchReportTest, MetricsJsonSplicedVerbatim) {
  const std::string json =
      BenchReportJson(MakeReport(), "{\"counters\":{}}");
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{}}"), std::string::npos);
  // Still a parseable report; the metrics member is informational.
  EXPECT_TRUE(ParseBenchReport(json).ok());
}

TEST(BenchReportTest, V1DocumentsLoadWithDefaults) {
  // The pre-schema_version shape: bare bench + records, no kind/mode.
  const std::string v1 =
      "{\"bench\":\"old_micro\",\"records\":["
      "{\"name\":\"rows\",\"value\":7,\"unit\":\"\"},"
      "{\"name\":\"\",\"value\":1,\"unit\":\"\"}]}";
  const Result<BenchReport> parsed = ParseBenchReport(v1);
  ASSERT_TRUE(parsed.ok());
  const BenchReport& report = parsed.ValueOrDie();
  EXPECT_EQ(report.schema_version, 1);
  EXPECT_EQ(report.name, "old_micro");
  EXPECT_EQ(report.kind, "micro");
  // Nameless records are dropped; the rest default to exact mode.
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].mode, RecordMode::kExact);
}

TEST(BenchReportTest, ParseRejectsNonObjects) {
  EXPECT_FALSE(ParseBenchReport("[]").ok());
  EXPECT_FALSE(ParseBenchReport("not json").ok());
}

TEST(BenchReportTest, ToMillisecondsHandlesTimeUnits) {
  EXPECT_DOUBLE_EQ(ToMilliseconds(2e6, "ns"), 2.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(1500.0, "us"), 1.5);
  EXPECT_DOUBLE_EQ(ToMilliseconds(3.0, "ms"), 3.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(2.0, "s"), 2000.0);
  EXPECT_TRUE(std::isnan(ToMilliseconds(5.0, "rows")));
}

TEST(BenchReportTest, CompareFailsOnExactMismatch) {
  const BenchReport baseline = MakeReport();
  BenchReport current = MakeReport();
  current.records[0].value = 43.0;  // rows: exact, zero tolerance.
  const std::vector<std::string> failures =
      CompareBenchReports(baseline, current);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("exact record 'rows'"), std::string::npos);
}

TEST(BenchReportTest, CompareFailsOnMissingRecordAndUnitChange) {
  const BenchReport baseline = MakeReport();
  BenchReport current = MakeReport();
  current.records.erase(current.records.begin());  // drop "rows"
  current.records[1].unit = "us";                  // "wall" changes unit
  const std::vector<std::string> failures =
      CompareBenchReports(baseline, current);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NE(failures[0].find("missing from run"), std::string::npos);
  EXPECT_NE(failures[1].find("changed unit"), std::string::npos);
}

TEST(BenchReportTest, CompareTimingRespectsThresholdAndFloor) {
  const BenchReport baseline = MakeReport();  // wall = 120 ms
  const CompareOptions options{/*threshold=*/0.5, /*floor_ms=*/5.0};

  // Within the relative threshold: passes.
  BenchReport mild = MakeReport();
  mild.records[2].value = 170.0;  // +41%
  EXPECT_TRUE(CompareBenchReports(baseline, mild, options).empty());

  // Beyond both threshold and floor: fails.
  BenchReport slow = MakeReport();
  slow.records[2].value = 300.0;  // +150%, +180 ms
  const std::vector<std::string> failures =
      CompareBenchReports(baseline, slow, options);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("regressed"), std::string::npos);

  // Improvements never fail.
  BenchReport fast = MakeReport();
  fast.records[2].value = 10.0;
  EXPECT_TRUE(CompareBenchReports(baseline, fast, options).empty());
}

TEST(BenchReportTest, CompareTimingFloorAbsorbsSmallRegressions) {
  BenchReport baseline = MakeReport();
  baseline.records[2] = {"wall", 1.0, "ms", RecordMode::kTiming};
  BenchReport current = MakeReport();
  // +300% relative but only +3 ms absolute: under the 5 ms floor.
  current.records[2] = {"wall", 4.0, "ms", RecordMode::kTiming};
  const CompareOptions options{/*threshold=*/0.5, /*floor_ms=*/5.0};
  EXPECT_TRUE(CompareBenchReports(baseline, current, options).empty());
}

TEST(BenchReportTest, CompareIgnoresRecordsOnlyInCurrent) {
  const BenchReport baseline = MakeReport();
  BenchReport current = MakeReport();
  current.records.push_back({"new_counter", 1.0, "", RecordMode::kExact});
  EXPECT_TRUE(CompareBenchReports(baseline, current).empty());
}

TEST(BenchReportTest, CompareSkipsTimingWithNonPositiveBaseline) {
  BenchReport baseline = MakeReport();
  baseline.records[2].value = 0.0;
  BenchReport current = MakeReport();
  current.records[2].value = 9999.0;
  EXPECT_TRUE(CompareBenchReports(baseline, current).empty());
}

}  // namespace
}  // namespace bench
}  // namespace serena
