#include "pems/query_processor.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "env/scenario.h"
#include "obs/metrics.h"

namespace serena {
namespace {

/// Query Processor behaviour over the standard scenario environment
/// (one-shot/continuous registration, optimization toggle, discovery
/// relations, derived streams, row windows).
class QueryProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
    processor_ = std::make_unique<QueryProcessor>(&scenario_->env(),
                                                  &scenario_->streams());
    processor_->executor().AddSource(
        [this](Timestamp t) { return scenario_->PumpTemperatureStream(t); },
        /*feeds=*/{"temperatures"});
  }

  std::unique_ptr<TemperatureScenario> scenario_;
  std::unique_ptr<QueryProcessor> processor_;
};

TEST_F(QueryProcessorTest, OneShotParsesOptimizesExecutes) {
  scenario_->env().registry().ResetStats();
  auto result = processor_->ExecuteOneShot(
      "select[area = 'office'](invoke[checkPhoto](cameras))");
  ASSERT_TRUE(result.ok());
  // The optimizer pushed the selection: only the office camera was asked.
  EXPECT_EQ(scenario_->env().registry().stats().physical_invocations, 1u);
  EXPECT_EQ(result->relation.size(), 1u);
}

TEST_F(QueryProcessorTest, OptimizationCanBeDisabled) {
  processor_->set_optimize(false);
  scenario_->env().registry().ResetStats();
  ASSERT_TRUE(processor_
                  ->ExecuteOneShot(
                      "select[area = 'office'](invoke[checkPhoto](cameras))")
                  .ok());
  // Naive: all three cameras probed.
  EXPECT_EQ(scenario_->env().registry().stats().physical_invocations, 3u);
}

TEST_F(QueryProcessorTest, ParseErrorsSurface) {
  EXPECT_EQ(processor_->ExecuteOneShot("select[](cameras)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(processor_->RegisterContinuous("bad", "project[](x)").code(),
            StatusCode::kParseError);
}

TEST_F(QueryProcessorTest, ContinuousRegistrationLifecycle) {
  std::size_t steps = 0;
  ASSERT_TRUE(processor_
                  ->RegisterContinuous(
                      "watch", "window[1](temperatures)",
                      [&](Timestamp, const XRelation&) { ++steps; })
                  .ok());
  EXPECT_EQ(processor_
                ->RegisterContinuous("watch", "window[1](temperatures)")
                .code(),
            StatusCode::kAlreadyExists);
  processor_->Tick();
  processor_->Tick();
  EXPECT_EQ(steps, 2u);
  ASSERT_TRUE(processor_->UnregisterContinuous("watch").ok());
  processor_->Tick();
  EXPECT_EQ(steps, 2u);
  EXPECT_FALSE(processor_->GetContinuous("watch").ok());
}

TEST_F(QueryProcessorTest, DiscoveryRelationIsQueryable) {
  ASSERT_TRUE(
      processor_->RegisterDiscoveryQuery("thermometers", "getTemperature")
          .ok());
  // Shaped with the prototype's parameters as virtual attributes and a
  // usable binding pattern.
  const XRelation* rel =
      scenario_->env().GetRelation("thermometers").ValueOrDie();
  EXPECT_EQ(rel->size(), 4u);
  EXPECT_TRUE(rel->schema().IsVirtual("temperature"));
  ASSERT_NE(rel->schema().FindBindingPattern("getTemperature"), nullptr);
  auto result =
      processor_->ExecuteOneShot("invoke[getTemperature](thermometers)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.size(), 4u);
  // Unknown prototype rejected.
  EXPECT_EQ(processor_->RegisterDiscoveryQuery("x", "nope").code(),
            StatusCode::kNotFound);
}

TEST_F(QueryProcessorTest, DiscoveryRelationTracksRegistryChanges) {
  ASSERT_TRUE(
      processor_->RegisterDiscoveryQuery("thermometers", "getTemperature")
          .ok());
  ASSERT_TRUE(scenario_->AddSensor("sensor77", "office", 20.0).ok());
  EXPECT_EQ(
      scenario_->env().GetRelation("thermometers").ValueOrDie()->size(),
      5u);
  ASSERT_TRUE(scenario_->env().registry().Unregister("sensor77").ok());
  EXPECT_EQ(
      scenario_->env().GetRelation("thermometers").ValueOrDie()->size(),
      4u);
}

TEST_F(QueryProcessorTest, DerivedStreamComposesQueries) {
  // Stage 1: hot readings flow into the derived stream `hot`.
  ASSERT_TRUE(processor_
                  ->RegisterContinuousInto(
                      "hot-feed",
                      "select[temperature > 30](window[1](temperatures))",
                      "hot")
                  .ok());
  // Stage 2: another query windows over the derived stream.
  std::size_t alerts = 0;
  ASSERT_TRUE(processor_
                  ->RegisterContinuous(
                      "hot-count", "aggregate[; count() -> n](window[3](hot))",
                      [&](Timestamp, const XRelation& r) {
                        if (!r.empty()) {
                          alerts = static_cast<std::size_t>(
                              r.tuples()[0][0].int_value());
                        }
                      })
                  .ok());
  scenario_->sensors()[1]->set_bias(15.0);  // Office runs hot (> 30).
  processor_->Tick();
  processor_->Tick();
  processor_->Tick();
  EXPECT_TRUE(processor_->executor().last_errors().empty());
  EXPECT_GE(alerts, 3u);  // >= one hot reading per instant in the window.
  EXPECT_TRUE(scenario_->streams().HasStream("hot"));
}

TEST_F(QueryProcessorTest, DerivedStreamSchemaMismatchRejected) {
  ASSERT_TRUE(processor_
                  ->RegisterContinuousInto("a", "window[1](temperatures)",
                                           "derived")
                  .ok());
  // Different shape into the same stream: refused.
  EXPECT_EQ(processor_
                ->RegisterContinuousInto(
                    "b", "project[location](window[1](temperatures))",
                    "derived")
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QueryProcessorTest, PreparedQueries) {
  ASSERT_TRUE(processor_
                  ->Prepare("greet",
                            "invoke[sendMessage](assign[text := "
                            ":msg](select[name = :who](contacts)))")
                  .ok());
  EXPECT_EQ(processor_->Prepare("greet", "contacts").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(processor_->PreparedParameters("greet").ValueOrDie(),
            (std::set<std::string>{"msg", "who"}));

  auto result = processor_->ExecutePrepared(
      "greet", {{"msg", Value::String("Hello")},
                {"who", Value::String("Nicolas")}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->actions.size(), 1u);
  const auto messages = scenario_->AllSentMessages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].address, "nicolas@elysee.fr");
  EXPECT_EQ(messages[0].text, "Hello");

  // Missing binding and unknown template fail cleanly.
  EXPECT_EQ(processor_
                ->ExecutePrepared("greet", {{"msg", Value::String("x")}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(processor_->ExecutePrepared("ghost", {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryProcessorTest, AnalysisGateRejectsUnknownRelation) {
  // Regression: plans used to run unvalidated — a scan of a missing
  // relation must now be refused up front with a coded diagnostic.
  const Status status =
      processor_->ExecuteOneShot("select[x = 1](ghost)").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER001"), std::string::npos);
}

TEST_F(QueryProcessorTest, AnalysisGateBlocksBeforeAnyInvocation) {
  scenario_->env().registry().ResetStats();
  // sendMessage's `text` input is still virtual: SER007, and crucially no
  // service may have been touched by the time the plan is rejected.
  const Status status =
      processor_->ExecuteOneShot("invoke[sendMessage](contacts)").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER007"), std::string::npos);
  EXPECT_EQ(scenario_->env().registry().stats().physical_invocations, 0u);
  EXPECT_TRUE(scenario_->AllSentMessages().empty());
}

TEST_F(QueryProcessorTest, AnalysisGateHasAnEscapeHatch) {
  EXPECT_TRUE(processor_->analyze());
  processor_->set_analyze(false);
  // The plan still fails — but at execution time, not in the analyzer.
  const Status status =
      processor_->ExecuteOneShot("select[x = 1](ghost)").status();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message().find("static analysis"), std::string::npos);
}

TEST_F(QueryProcessorTest, AnalysisGateWarningsDoNotBlock) {
  // Q1'-shaped query: SER030 is only a warning, so execution proceeds.
  auto result = processor_->ExecuteOneShot(
      "select[name = 'Carla'](invoke[sendMessage]("
      "assign[text := 'hi'](contacts)))");
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST_F(QueryProcessorTest, ContinuousRegistrationGated) {
  const Status status =
      processor_->RegisterContinuous("bad", "window[1](no_such_stream)");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER002"), std::string::npos);
  EXPECT_TRUE(processor_->executor().QueryNames().empty());
}

TEST_F(QueryProcessorTest, CrossQueryCycleRejectedAtRegistration) {
  ASSERT_TRUE(processor_
                  ->RegisterContinuousInto("a", "window[1](temperatures)",
                                           "s1")
                  .ok());
  // `b` would feed `temperatures`, which `a` reads: a -> b -> a.
  const Status status =
      processor_->RegisterContinuousInto("b", "window[1](s1)",
                                         "temperatures");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER040"), std::string::npos);
  // The rejected query left no trace in the executor.
  EXPECT_EQ(processor_->executor().QueryNames(),
            (std::vector<std::string>{"a"}));
}

TEST_F(QueryProcessorTest, WriterConflictRejectedAtRegistration) {
  ASSERT_TRUE(processor_
                  ->RegisterContinuousInto("a", "window[1](temperatures)",
                                           "derived")
                  .ok());
  // Same schema, same derived stream: refused as a writer/writer race.
  const Status status = processor_->RegisterContinuousInto(
      "b", "window[2](temperatures)", "derived");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER042"), std::string::npos);
}

TEST_F(QueryProcessorTest, ExecutorReportsSourceFedStreams) {
  EXPECT_EQ(processor_->executor().SourceFedStreams(),
            (std::vector<std::string>{"temperatures"}));
}

TEST_F(QueryProcessorTest, SemanticRewriteDropsDeadInvoke) {
  // The projection above never reads checkPhoto's output: the analyzer
  // fact feeds the semantic rewriter, which drops the dead β entirely —
  // same bytes out, zero service calls.
  const std::string algebra = "project[area](invoke[checkPhoto](cameras))";

  scenario_->env().registry().ResetStats();
  auto optimized = processor_->ExecuteOneShot(algebra);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(scenario_->env().registry().stats().physical_invocations, 0u);

  processor_->set_optimize(false);
  scenario_->env().registry().ResetStats();
  auto naive = processor_->ExecuteOneShot(algebra);
  ASSERT_TRUE(naive.ok()) << naive.status();
  EXPECT_EQ(scenario_->env().registry().stats().physical_invocations, 3u);

  EXPECT_EQ(optimized->relation.ToTableString(),
            naive->relation.ToTableString());
  EXPECT_EQ(optimized->actions.ToString(), naive->actions.ToString());
}

TEST_F(QueryProcessorTest, WerrorEnvironmentPromotesWarningsToGateErrors) {
  // SER021 (dead passive invocation) is a warning: the default gate
  // waves the plan through.
  const std::string algebra = "project[area](invoke[checkPhoto](cameras))";
  EXPECT_TRUE(processor_->ExecuteOneShot(algebra).ok());

  // A processor built under SERENA_WERROR=SER021 promotes it to a gate
  // error — the same plan is now refused before anything executes.
  ::setenv("SERENA_WERROR", "SER021", 1);
  QueryProcessor strict(&scenario_->env(), &scenario_->streams());
  ::unsetenv("SERENA_WERROR");
  const Status status = strict.ExecuteOneShot(algebra).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SER021"), std::string::npos);
}

TEST_F(QueryProcessorTest, RegistrationLintStaysLinearInNewQueries) {
  // Registering the N-th query must analyze only that query (gate +
  // registration lint), never re-lint the committed set — and with no
  // feeds there is no dependency frontier to walk at all.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  const std::uint64_t plans_before =
      metrics.GetCounter("serena.analyze.plans").value();
  const std::uint64_t frontier_before =
      metrics.GetCounter("serena.analyze.frontier_queries").value();

  constexpr std::size_t kQueries = 200;
  for (std::size_t i = 0; i < kQueries; ++i) {
    std::string name = "w";
    name += std::to_string(i);
    ASSERT_TRUE(
        processor_->RegisterContinuous(name, "window[1](temperatures)")
            .ok());
  }
  EXPECT_EQ(processor_->analysis_session().query_count(), kQueries);

  const std::uint64_t plans =
      metrics.GetCounter("serena.analyze.plans").value() - plans_before;
  const std::uint64_t frontier =
      metrics.GetCounter("serena.analyze.frontier_queries").value() -
      frontier_before;
  // O(new query): a constant number of analyses per registration.
  EXPECT_GE(plans, 2 * kQueries);
  EXPECT_LE(plans, 3 * kQueries);
  EXPECT_EQ(frontier, 0u);
}

TEST_F(QueryProcessorTest, RowWindowsThroughTheLanguage) {
  std::size_t last = 0;
  ASSERT_TRUE(processor_
                  ->RegisterContinuous(
                      "latest", "window[rows 5](temperatures)",
                      [&](Timestamp, const XRelation& r) { last = r.size(); })
                  .ok());
  processor_->Tick();  // 4 readings exist.
  EXPECT_EQ(last, 4u);
  processor_->Tick();  // 8 exist; row window caps at 5.
  EXPECT_EQ(last, 5u);
  processor_->Tick();
  EXPECT_EQ(last, 5u);
  // Round-trips through ToString.
  auto query = processor_->GetContinuous("latest").ValueOrDie();
  EXPECT_EQ(query->plan()->ToString(), "window[rows 5](temperatures)");
}

TEST_F(QueryProcessorTest, RowWindowSurvivesPruning) {
  ASSERT_TRUE(processor_
                  ->RegisterContinuous("latest",
                                       "window[rows 6](temperatures)")
                  .ok());
  processor_->executor().set_prune_slack(0);
  for (int i = 0; i < 10; ++i) processor_->Tick();
  const XDRelation* stream =
      scenario_->streams().GetStream("temperatures").ValueOrDie();
  // Pruned aggressively, but never below the row-window demand.
  EXPECT_GE(stream->size(), 6u);
  auto query = processor_->GetContinuous("latest").ValueOrDie();
  EXPECT_EQ(query
                ->Step(&scenario_->env(), &scenario_->streams(),
                       scenario_->env().clock().now())
                .ValueOrDie()
                .size(),
            6u);
}

}  // namespace
}  // namespace serena
