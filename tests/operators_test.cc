#include "algebra/operators.h"

#include <gtest/gtest.h>

#include "env/prototypes.h"

namespace serena {
namespace {

/// Builds the contacts X-Relation of Example 4, populated.
XRelation MakeContacts() {
  auto schema =
      ExtendedSchema::Create(
          "contacts",
          {{"name", DataType::kString},
           {"address", DataType::kString},
           {"text", DataType::kString, AttributeKind::kVirtual},
           {"messenger", DataType::kService},
           {"sent", DataType::kBool, AttributeKind::kVirtual}},
          {BindingPattern(MakeSendMessagePrototype(), "messenger")})
          .ValueOrDie();
  XRelation r(schema);
  r.Insert(Tuple{Value::String("Nicolas"), Value::String("nicolas@elysee.fr"),
                 Value::String("email")})
      .ValueOrDie();
  r.Insert(Tuple{Value::String("Carla"), Value::String("carla@elysee.fr"),
                 Value::String("email")})
      .ValueOrDie();
  r.Insert(Tuple{Value::String("Francois"),
                 Value::String("francois@im.gouv.fr"),
                 Value::String("jabber")})
      .ValueOrDie();
  return r;
}

XRelation MakeCameras() {
  auto schema =
      ExtendedSchema::Create(
          "cameras",
          {{"camera", DataType::kService},
           {"area", DataType::kString},
           {"quality", DataType::kInt, AttributeKind::kVirtual},
           {"delay", DataType::kReal, AttributeKind::kVirtual},
           {"photo", DataType::kBlob, AttributeKind::kVirtual}},
          {BindingPattern(MakeCheckPhotoPrototype(), "camera"),
           BindingPattern(MakeTakePhotoPrototype(), "camera")})
          .ValueOrDie();
  XRelation r(schema);
  r.Insert(Tuple{Value::String("camera01"), Value::String("office")})
      .ValueOrDie();
  r.Insert(Tuple{Value::String("camera02"), Value::String("corridor")})
      .ValueOrDie();
  r.Insert(Tuple{Value::String("webcam07"), Value::String("roof")})
      .ValueOrDie();
  return r;
}

// ---------------------------------------------------------------------------
// Set operators
// ---------------------------------------------------------------------------

TEST(SetOpsTest, UnionIntersectDifference) {
  XRelation a = MakeContacts();
  XRelation b(a.schema_ptr());
  b.Insert(Tuple{Value::String("Carla"), Value::String("carla@elysee.fr"),
                 Value::String("email")})
      .ValueOrDie();
  b.Insert(Tuple{Value::String("Angela"), Value::String("angela@bund.de"),
                 Value::String("sms")})
      .ValueOrDie();

  XRelation u = Union(a, b).ValueOrDie();
  EXPECT_EQ(u.size(), 4u);  // 3 + 2 with Carla deduplicated.

  XRelation i = Intersect(a, b).ValueOrDie();
  EXPECT_EQ(i.size(), 1u);

  XRelation d = Difference(a, b).ValueOrDie();
  EXPECT_EQ(d.size(), 2u);  // Nicolas, Francois.
  XRelation d2 = Difference(b, a).ValueOrDie();
  EXPECT_EQ(d2.size(), 1u);  // Angela.
}

TEST(SetOpsTest, SchemaMismatchRejected) {
  XRelation contacts = MakeContacts();
  XRelation cameras = MakeCameras();
  EXPECT_FALSE(Union(contacts, cameras).ok());
  EXPECT_FALSE(Intersect(contacts, cameras).ok());
  EXPECT_FALSE(Difference(contacts, cameras).ok());
}

TEST(SetOpsTest, ResultKeepsBindingPatterns) {
  XRelation a = MakeContacts();
  XRelation b(a.schema_ptr());
  XRelation u = Union(a, b).ValueOrDie();
  EXPECT_EQ(u.schema().binding_patterns().size(), 1u);
  EXPECT_NE(u.schema().FindBindingPattern("sendMessage"), nullptr);
}

// ---------------------------------------------------------------------------
// Projection (Table 3 (a))
// ---------------------------------------------------------------------------

TEST(ProjectTest, ReducesRealAndVirtualSchema) {
  XRelation contacts = MakeContacts();
  XRelation r = Project(contacts, {"name", "messenger", "text"}).ValueOrDie();
  EXPECT_EQ(r.schema().RealNames(),
            (std::vector<std::string>{"name", "messenger"}));
  EXPECT_EQ(r.schema().VirtualNames(), (std::vector<std::string>{"text"}));
  EXPECT_EQ(r.size(), 3u);
  // Binding pattern dropped: `address` (an input) was projected away.
  EXPECT_TRUE(r.schema().binding_patterns().empty());
}

TEST(ProjectTest, KeepsValidBindingPattern) {
  XRelation contacts = MakeContacts();
  // Keep everything sendMessage needs: service attr + inputs + outputs.
  XRelation r =
      Project(contacts, {"address", "text", "messenger", "sent"})
          .ValueOrDie();
  ASSERT_EQ(r.schema().binding_patterns().size(), 1u);
  EXPECT_EQ(r.schema().binding_patterns()[0].prototype().name(),
            "sendMessage");
}

TEST(ProjectTest, ProjectionCanCollapseTuples) {
  XRelation contacts = MakeContacts();
  XRelation r = Project(contacts, {"messenger"}).ValueOrDie();
  // Nicolas and Carla both use email: set semantics collapse them.
  EXPECT_EQ(r.size(), 2u);
}

TEST(ProjectTest, UnknownAttributeRejected) {
  XRelation contacts = MakeContacts();
  EXPECT_FALSE(Project(contacts, {"name", "nope"}).ok());
}

TEST(ProjectTest, ProjectionOrderFollowsSchemaOrder) {
  XRelation contacts = MakeContacts();
  // Request in scrambled order; schema order prevails (attr_R numbering).
  XRelation r = Project(contacts, {"messenger", "name"}).ValueOrDie();
  EXPECT_EQ(r.schema().AllNames(),
            (std::vector<std::string>{"name", "messenger"}));
}

// ---------------------------------------------------------------------------
// Selection (Table 3 (b))
// ---------------------------------------------------------------------------

TEST(SelectTest, FiltersTuples) {
  XRelation contacts = MakeContacts();
  FormulaPtr f = Formula::Compare(Operand::Attr("messenger"), CompareOp::kEq,
                                  Operand::Const(Value::String("email")));
  XRelation r = Select(contacts, f).ValueOrDie();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.schema().SameAttributes(contacts.schema()));
}

TEST(SelectTest, VirtualAttributeInFormulaRejected) {
  XRelation contacts = MakeContacts();
  FormulaPtr f = Formula::Compare(Operand::Attr("text"), CompareOp::kEq,
                                  Operand::Const(Value::String("x")));
  EXPECT_FALSE(Select(contacts, f).ok());
}

TEST(SelectTest, ComplexFormula) {
  XRelation contacts = MakeContacts();
  // messenger = 'email' AND NOT name = 'Carla'.
  FormulaPtr f = Formula::And(
      Formula::Compare(Operand::Attr("messenger"), CompareOp::kEq,
                       Operand::Const(Value::String("email"))),
      Formula::Not(Formula::Compare(Operand::Attr("name"), CompareOp::kEq,
                                    Operand::Const(Value::String("Carla")))));
  XRelation r = Select(contacts, f).ValueOrDie();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.ProjectValue(r.tuples()[0], "name").ValueOrDie(),
            Value::String("Nicolas"));
}

TEST(SelectTest, OrderingOnStringsAndNumbers) {
  XRelation contacts = MakeContacts();
  FormulaPtr f = Formula::Compare(Operand::Attr("name"), CompareOp::kLt,
                                  Operand::Const(Value::String("D")));
  XRelation r = Select(contacts, f).ValueOrDie();
  EXPECT_EQ(r.size(), 1u);  // Only "Carla" < "D".
}

TEST(SelectTest, ContainsPredicate) {
  XRelation contacts = MakeContacts();
  FormulaPtr f =
      Formula::Compare(Operand::Attr("address"), CompareOp::kContains,
                       Operand::Const(Value::String("elysee")));
  XRelation r = Select(contacts, f).ValueOrDie();
  EXPECT_EQ(r.size(), 2u);
}

// ---------------------------------------------------------------------------
// Renaming (Table 3 (c))
// ---------------------------------------------------------------------------

TEST(RenameTest, RenamesAttributeKeepingKind) {
  XRelation cameras = MakeCameras();
  XRelation r = Rename(cameras, "area", "zone").ValueOrDie();
  EXPECT_TRUE(r.schema().Contains("zone"));
  EXPECT_FALSE(r.schema().Contains("area"));
  EXPECT_TRUE(r.schema().IsReal("zone"));
  EXPECT_EQ(r.size(), 3u);
  // checkPhoto/takePhoto need input `area`, which is gone: both dropped.
  EXPECT_TRUE(r.schema().binding_patterns().empty());
}

TEST(RenameTest, ServiceAttributeRenameFollowsBindingPattern) {
  XRelation cameras = MakeCameras();
  XRelation r = Rename(cameras, "camera", "device").ValueOrDie();
  ASSERT_EQ(r.schema().binding_patterns().size(), 2u);
  EXPECT_EQ(r.schema().binding_patterns()[0].service_attribute(), "device");
  EXPECT_EQ(r.schema().binding_patterns()[1].service_attribute(), "device");
}

TEST(RenameTest, RejectsCollisionAndMissing) {
  XRelation cameras = MakeCameras();
  EXPECT_FALSE(Rename(cameras, "area", "camera").ok());  // Collision.
  EXPECT_FALSE(Rename(cameras, "nope", "x").ok());       // Missing.
}

TEST(RenameTest, VirtualAttributeRenameDropsPattern) {
  XRelation cameras = MakeCameras();
  // `photo` is takePhoto's output; renaming it invalidates that pattern
  // but keeps checkPhoto.
  XRelation r = Rename(cameras, "photo", "picture").ValueOrDie();
  EXPECT_TRUE(r.schema().IsVirtual("picture"));
  ASSERT_EQ(r.schema().binding_patterns().size(), 1u);
  EXPECT_EQ(r.schema().binding_patterns()[0].prototype().name(),
            "checkPhoto");
}

// ---------------------------------------------------------------------------
// Natural join (Table 3 (d))
// ---------------------------------------------------------------------------

TEST(JoinTest, JoinsOnCommonRealAttributes) {
  XRelation cameras = MakeCameras();
  auto areas_schema =
      ExtendedSchema::Create("zones", {{"area", DataType::kString},
                                       {"floor", DataType::kInt}})
          .ValueOrDie();
  XRelation zones(areas_schema);
  zones.Insert(Tuple{Value::String("office"), Value::Int(2)}).ValueOrDie();
  zones.Insert(Tuple{Value::String("roof"), Value::Int(5)}).ValueOrDie();

  XRelation joined = NaturalJoin(cameras, zones).ValueOrDie();
  EXPECT_EQ(joined.size(), 2u);  // corridor has no floor entry.
  EXPECT_EQ(joined.schema().AllNames(),
            (std::vector<std::string>{"camera", "area", "quality", "delay",
                                      "photo", "floor"}));
  // Patterns survive: their attributes are intact and outputs still virtual.
  EXPECT_EQ(joined.schema().binding_patterns().size(), 2u);
}

TEST(JoinTest, AllVirtualJoinAttributesMeanCartesianProduct) {
  XRelation cameras = MakeCameras();
  // Second relation shares only `quality`, virtual in cameras.
  auto schema = ExtendedSchema::Create("grades",
                                       {{"quality", DataType::kInt},
                                        {"grade", DataType::kString}})
                    .ValueOrDie();
  XRelation grades(schema);
  grades.Insert(Tuple{Value::Int(5), Value::String("ok")}).ValueOrDie();
  grades.Insert(Tuple{Value::Int(9), Value::String("great")}).ValueOrDie();

  XRelation joined = NaturalJoin(cameras, grades).ValueOrDie();
  // No join predicate: 3 cameras x 2 grades.
  EXPECT_EQ(joined.size(), 6u);
  // Implicit realization: quality became real (value from `grades`).
  EXPECT_TRUE(joined.schema().IsReal("quality"));
  // takePhoto's input quality is now real - fine; but checkPhoto's OUTPUT
  // quality became real: checkPhoto is eliminated.
  ASSERT_EQ(joined.schema().binding_patterns().size(), 1u);
  EXPECT_EQ(joined.schema().binding_patterns()[0].prototype().name(),
            "takePhoto");
}

TEST(JoinTest, RealOverridesVirtualInResultKind) {
  XRelation contacts = MakeContacts();
  auto schema = ExtendedSchema::Create("texts",
                                       {{"name", DataType::kString},
                                        {"text", DataType::kString}})
                    .ValueOrDie();
  XRelation texts(schema);
  texts.Insert(Tuple{Value::String("Carla"), Value::String("Ciao")})
      .ValueOrDie();

  XRelation joined = NaturalJoin(contacts, texts).ValueOrDie();
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.schema().IsReal("text"));
  EXPECT_TRUE(joined.schema().IsVirtual("sent"));
  EXPECT_EQ(joined.ProjectValue(joined.tuples()[0], "text").ValueOrDie(),
            Value::String("Ciao"));
  // sendMessage survives: inputs address+text present, output sent virtual.
  EXPECT_EQ(joined.schema().binding_patterns().size(), 1u);
}

TEST(JoinTest, IncompatibleSharedTypesRejected) {
  auto s1 = ExtendedSchema::Create("a", {{"x", DataType::kInt}}).ValueOrDie();
  auto s2 =
      ExtendedSchema::Create("b", {{"x", DataType::kString}}).ValueOrDie();
  XRelation r1(s1);
  XRelation r2(s2);
  EXPECT_FALSE(NaturalJoin(r1, r2).ok());
}

TEST(JoinTest, IntJoinsWithRealByNumericEquality) {
  auto s1 = ExtendedSchema::Create("a", {{"x", DataType::kInt},
                                         {"tag", DataType::kString}})
                .ValueOrDie();
  auto s2 = ExtendedSchema::Create("b", {{"x", DataType::kReal},
                                         {"mark", DataType::kString}})
                .ValueOrDie();
  XRelation r1(s1);
  r1.Insert(Tuple{Value::Int(2), Value::String("two")}).ValueOrDie();
  XRelation r2(s2);
  r2.Insert(Tuple{Value::Real(2.0), Value::String("deux")}).ValueOrDie();
  XRelation joined = NaturalJoin(r1, r2).ValueOrDie();
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined.schema().FindAttribute("x")->type, DataType::kReal);
}

}  // namespace
}  // namespace serena
