#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "env/scenario.h"
#include "rewrite/equivalence.h"

namespace serena {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }
  Rewriter MakeRewriter() { return Rewriter(&env(), &streams()); }

  std::unique_ptr<TemperatureScenario> scenario_;
};

FormulaPtr NameIsNot(const std::string& name) {
  return Formula::Compare(Operand::Attr("name"), CompareOp::kNe,
                          Operand::Const(Value::String(name)));
}

FormulaPtr AttrEq(const std::string& attr, Value v) {
  return Formula::Compare(Operand::Attr(attr), CompareOp::kEq,
                          Operand::Const(std::move(v)));
}

// ---------------------------------------------------------------------------
// Individual Table 5 rules
// ---------------------------------------------------------------------------

TEST_F(RewriteTest, SelectionPushedBelowAssign) {
  // σ_name≠Carla(α_text:='x'(contacts)) → α(σ(contacts)); name ∉ {text}.
  PlanPtr plan = Select(
      Assign(Scan("contacts"), "text", Value::String("x")),
      NameIsNot("Carla"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "assign[text := 'x'](select[name != 'Carla'](contacts))");
  // Def. 9 equivalence holds empirically.
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 1).ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, SelectionNotPushedWhenFormulaUsesAssignedAttribute) {
  // σ_text='x'(α_text:='x'(contacts)): A ∈ F blocks the rule (Table 5).
  PlanPtr plan = Select(
      Assign(Scan("contacts"), "text", Value::String("x")),
      AttrEq("text", Value::String("x")));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(rewritten->Equals(*plan));
}

TEST_F(RewriteTest, SelectionPushedBelowPassiveInvoke) {
  // σ_area='office'(β_checkPhoto(cameras)) → β(σ(cameras)): passive, and
  // `area` is not an output of checkPhoto.
  PlanPtr plan = Select(Invoke(Scan("cameras"), "checkPhoto"),
                        AttrEq("area", Value::String("office")));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "invoke[checkPhoto](select[area = 'office'](cameras))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 2).ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, SelectionNotPushedBelowActiveInvoke) {
  // §3.3 barrier: sendMessage is active; pushing σ below β would turn Q1'
  // into Q1 and change the action set (Example 6).
  PlanPtr q1_prime = scenario_->Q1Prime();
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(q1_prime, &changed).ValueOrDie();
  // The selection must remain above the invoke.
  EXPECT_EQ(rewritten->ToString(), q1_prime->ToString());
}

TEST_F(RewriteTest, SelectionNotPushedWhenFormulaUsesInvokeOutput) {
  // σ_quality>=5(β_checkPhoto(cameras)): quality is checkPhoto's output.
  PlanPtr plan = Select(Invoke(Scan("cameras"), "checkPhoto"),
                        Formula::Compare(Operand::Attr("quality"),
                                         CompareOp::kGe,
                                         Operand::Const(Value::Int(5))));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(rewritten->Equals(*plan));
}

TEST_F(RewriteTest, ProjectionPushedBelowAssign) {
  PlanPtr plan = Project(
      Assign(Scan("contacts"), "text", Value::String("x")),
      {"name", "text"});
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "assign[text := 'x'](project[name, text](contacts))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 3).ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, ProjectionNotPushedWhenTargetDropped) {
  // π drops `text` (the realized attribute): rule must not fire.
  PlanPtr plan = Project(
      Assign(Scan("contacts"), "text", Value::String("x")), {"name"});
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(rewritten->Equals(*plan));
}

TEST_F(RewriteTest, ProjectionPushedBelowInvokeKeepingPatternAttributes) {
  // π keeps camera (service attr), area (input), quality+delay (outputs).
  PlanPtr plan = Project(Invoke(Scan("cameras"), "checkPhoto"),
                         {"camera", "area", "quality", "delay"});
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(
      rewritten->ToString(),
      "invoke[checkPhoto](project[camera, area, quality, delay](cameras))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 4).ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, ProjectionNotPushedWhenPatternAttributeDropped) {
  // `delay` (an output of checkPhoto) is dropped: the pattern would not
  // survive below, so the rule must not fire.
  PlanPtr plan = Project(Invoke(Scan("cameras"), "checkPhoto"),
                         {"camera", "area", "quality"});
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(rewritten->Equals(*plan));
}

TEST_F(RewriteTest, SelectionPushedIntoJoinSide) {
  PlanPtr plan = Select(Join(Scan("sensors"), Scan("surveillance")),
                        AttrEq("name", Value::String("Carla")));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "join(sensors, select[name = 'Carla'](surveillance))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 5).ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, MergeAndCollapseRules) {
  PlanPtr plan = Select(
      Select(Scan("contacts"), NameIsNot("Carla")), NameIsNot("Nicolas"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->kind(), PlanKind::kSelect);
  EXPECT_EQ(rewritten->children()[0]->kind(), PlanKind::kScan);

  PlanPtr proj = Project(
      Project(Scan("contacts"), {"name", "address", "messenger"}),
      {"name"});
  changed = false;
  PlanPtr collapsed =
      MakeRewriter().RewriteOnce(proj, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(collapsed->ToString(), "project[name](contacts)");
}

TEST_F(RewriteTest, SelectionPushedBelowRenameWithTranslation) {
  // σ_area='office'(ρ_location→area(sensors)) → ρ(σ_location='office').
  PlanPtr plan = Select(Rename(Scan("sensors"), "location", "area"),
                        AttrEq("area", Value::String("office")));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "rename[location -> area](select[location = "
            "'office'](sensors))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 21)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, SelectionDistributesOverUnion) {
  PlanPtr plan = Select(UnionOf(Scan("sensors"), Scan("sensors")),
                        AttrEq("location", Value::String("office")));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "union(select[location = 'office'](sensors), select[location = "
            "'office'](sensors))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 22)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, SelectionPushesIntoIntersectAndDifferenceLeft) {
  PlanPtr office = Select(Scan("sensors"),
                          AttrEq("location", Value::String("office")));
  for (auto make : {IntersectOf, DifferenceOf}) {
    PlanPtr plan = Select(make(Scan("sensors"), office),
                          AttrEq("sensor", Value::String("sensor06")));
    bool changed = false;
    PlanPtr rewritten =
        MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
    EXPECT_TRUE(changed) << plan->ToString();
    EquivalenceReport report =
        CheckEquivalence(plan, rewritten, &env(), &streams(), 23)
            .ValueOrDie();
    EXPECT_TRUE(report.equivalent())
        << plan->ToString() << " -> " << rewritten->ToString();
  }
}

TEST_F(RewriteTest, AssignPushedIntoJoinSide) {
  // α_text:='x'(contacts ⋈ surveillance) → α(contacts) ⋈ surveillance:
  // `text` lives only in contacts.
  PlanPtr plan = Assign(Join(Scan("contacts"), Scan("surveillance")),
                        "text", Value::String("x"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "join(assign[text := 'x'](contacts), surveillance)");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 31)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, AssignNotPushedWhenOtherSideRealizesTarget) {
  // `text` exists (real) on the right side: join would realize it there,
  // so pushing α into the left is not equivalent. Table 5's condition
  // A ∉ realSchema(R2).
  auto texts_schema =
      ExtendedSchema::Create("texts", {{"name", DataType::kString},
                                       {"text", DataType::kString}})
          .ValueOrDie();
  ASSERT_TRUE(env().AddRelation(texts_schema).ok());
  PlanPtr plan = Assign(Join(Scan("contacts"), Scan("texts")), "text",
                        Value::String("x"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  // The assign must stay above the join... in fact the plan is invalid
  // (text is real after the join); the rule must simply not fire.
  EXPECT_EQ(rewritten->ToString(), plan->ToString());
}

TEST_F(RewriteTest, PassiveInvokeDeferredPastJoin) {
  // join(β_getTemperature(sensors), surveillance): deferring β lets the
  // join prune sensors with no surveillance entry before any invocation.
  PlanPtr plan = Join(Invoke(Scan("sensors"), "getTemperature"),
                      Scan("surveillance"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  EXPECT_TRUE(changed);
  EXPECT_EQ(rewritten->ToString(),
            "invoke[getTemperature](join(sensors, surveillance))");
  EquivalenceReport report =
      CheckEquivalence(plan, rewritten, &env(), &streams(), 32)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, ActiveInvokeNeverDeferred) {
  PlanPtr plan = Join(
      Invoke(Assign(Scan("contacts"), "text", Value::String("x")),
             "sendMessage"),
      Scan("surveillance"));
  bool changed = false;
  PlanPtr rewritten =
      MakeRewriter().RewriteOnce(plan, &changed).ValueOrDie();
  // The assign may move, but the active β must stay inside the join (the
  // join's rendering opens before the invoke's).
  const std::string repr = rewritten->ToString();
  EXPECT_LT(repr.find("join"), repr.find("invoke[sendMessage]"));
}

TEST_F(RewriteTest, DeferredInvokeReducesPhysicalInvocations) {
  TemperatureScenarioOptions options;
  options.extra_sensors = 60;
  options.extra_areas = 13;  // Most sensors sit in unmanaged areas.
  auto big = TemperatureScenario::Build(options).MoveValueOrDie();
  PlanPtr eager = Join(Invoke(Scan("sensors"), "getTemperature"),
                       Scan("surveillance"));
  Rewriter rewriter(&big->env(), &big->streams());
  PlanPtr lazy = rewriter.Optimize(eager).ValueOrDie();

  big->env().registry().ResetStats();
  ASSERT_TRUE(Execute(eager, &big->env(), &big->streams(), 1).ok());
  const auto eager_inv =
      big->env().registry().stats().physical_invocations;
  big->env().registry().ResetStats();
  ASSERT_TRUE(Execute(lazy, &big->env(), &big->streams(), 2).ok());
  const auto lazy_inv = big->env().registry().stats().physical_invocations;
  EXPECT_LT(lazy_inv, eager_inv);
}

// ---------------------------------------------------------------------------
// End-to-end optimization
// ---------------------------------------------------------------------------

TEST_F(RewriteTest, OptimizerTurnsQ2PrimeShapeIntoQ2Shape) {
  // Q2' does checkPhoto on all cameras; after optimization the area
  // selection reaches the scan and only office cameras are checked.
  PlanPtr optimized = MakeRewriter().Optimize(scenario_->Q2Prime())
                          .ValueOrDie();
  // The area selection must now sit below checkPhoto.
  const std::string repr = optimized->ToString();
  const auto check_pos = repr.find("invoke[checkPhoto]");
  const auto area_pos = repr.find("area = 'office'");
  ASSERT_NE(check_pos, std::string::npos);
  ASSERT_NE(area_pos, std::string::npos);
  EXPECT_GT(area_pos, check_pos);

  // Fewer physical invocations than the original.
  env().registry().ResetStats();
  ASSERT_TRUE(
      Execute(scenario_->Q2Prime(), &env(), &streams(), 7).ok());
  const auto original = env().registry().stats().physical_invocations;
  env().registry().ResetStats();
  ASSERT_TRUE(Execute(optimized, &env(), &streams(), 8).ok());
  const auto rewritten = env().registry().stats().physical_invocations;
  EXPECT_LT(rewritten, original);

  // And of course: still equivalent (Def. 9).
  EquivalenceReport report =
      CheckEquivalence(scenario_->Q2Prime(), optimized, &env(), &streams(),
                       9)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
}

TEST_F(RewriteTest, OptimizerKeepsQ1PrimeActionSetIntact) {
  // Optimizing Q1' must NOT yield Q1: actions differ (Example 6). The
  // only admissible change is none (selection blocked by active β).
  PlanPtr optimized =
      MakeRewriter().Optimize(scenario_->Q1Prime()).ValueOrDie();
  EquivalenceReport report =
      CheckEquivalence(scenario_->Q1Prime(), optimized, &env(), &streams(),
                       10)
          .ValueOrDie();
  EXPECT_TRUE(report.equivalent()) << report.ToString();
  QueryResult r = Execute(optimized, &env(), &streams(), 11).ValueOrDie();
  EXPECT_EQ(r.actions.size(), 3u);  // Carla still messaged.
}

TEST_F(RewriteTest, OptimizerIsIdempotent) {
  Rewriter rewriter = MakeRewriter();
  PlanPtr once = rewriter.Optimize(scenario_->Q2Prime()).ValueOrDie();
  PlanPtr twice = rewriter.Optimize(once).ValueOrDie();
  EXPECT_EQ(once->ToString(), twice->ToString());
}

TEST_F(RewriteTest, CostModelPrefersPusheddownPlan) {
  auto original =
      EstimateCost(scenario_->Q2Prime(), env(), &streams()).ValueOrDie();
  PlanPtr optimized =
      MakeRewriter().Optimize(scenario_->Q2Prime()).ValueOrDie();
  auto better = EstimateCost(optimized, env(), &streams()).ValueOrDie();
  EXPECT_LE(better.Total(), original.Total());
  EXPECT_LT(better.invocations, original.invocations);
}

TEST_F(RewriteTest, CostEstimatesScaleWithCardinality) {
  TemperatureScenarioOptions options;
  options.extra_cameras = 50;
  auto big = TemperatureScenario::Build(options).MoveValueOrDie();
  auto small_cost =
      EstimateCost(scenario_->Q2Prime(), env(), &streams()).ValueOrDie();
  auto big_cost = EstimateCost(big->Q2Prime(), big->env(), &big->streams())
                      .ValueOrDie();
  EXPECT_GT(big_cost.invocations, small_cost.invocations);
}

}  // namespace
}  // namespace serena
