#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace serena {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value: ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value: 42");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value: 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeMismatch), "TypeMismatch");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative: ", x);
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  SERENA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SERENA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace serena
