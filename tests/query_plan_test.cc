#include "algebra/plan.h"

#include <gtest/gtest.h>

#include "env/scenario.h"

namespace serena {
namespace {

/// Tests over the paper's motivating environment (Tables 1-2, Example 4):
/// queries Q1/Q1'/Q2/Q2' of Table 4, action sets of Example 6, and the
/// (in)equivalences of Example 7.
class QueryPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(QueryPlanTest, ScanReadsEnvironmentRelation) {
  QueryResult r =
      Execute(Scan("contacts"), &env(), &streams()).ValueOrDie();
  EXPECT_EQ(r.relation.size(), 3u);
  EXPECT_TRUE(r.actions.empty());
}

TEST_F(QueryPlanTest, SchemaInferenceMatchesEvaluation) {
  const PlanPtr queries[] = {scenario_->Q1(), scenario_->Q1Prime(),
                             scenario_->Q2(), scenario_->Q2Prime()};
  for (const PlanPtr& q : queries) {
    auto inferred = q->InferSchema(env(), &streams());
    ASSERT_TRUE(inferred.ok()) << q->ToString();
    QueryResult result = Execute(q, &env(), &streams()).ValueOrDie();
    EXPECT_TRUE(result.relation.schema().SameAttributes(**inferred))
        << q->ToString();
  }
}

TEST_F(QueryPlanTest, Q1SendsToAllButCarla) {
  QueryResult r = Execute(scenario_->Q1(), &env(), &streams()).ValueOrDie();
  EXPECT_EQ(r.relation.size(), 2u);
  // Example 6: exactly two actions.
  ASSERT_EQ(r.actions.size(), 2u);
  const Action nicolas{"sendMessage", "messenger", "email",
                       Tuple{Value::String("nicolas@elysee.fr"),
                             Value::String("Bonjour!")}};
  const Action francois{"sendMessage", "messenger", "jabber",
                        Tuple{Value::String("francois@im.gouv.fr"),
                              Value::String("Bonjour!")}};
  EXPECT_EQ(r.actions.actions().count(nicolas), 1u);
  EXPECT_EQ(r.actions.actions().count(francois), 1u);
  // Physically: Carla received nothing.
  for (const SentMessage& m : scenario_->AllSentMessages()) {
    EXPECT_NE(m.address, "carla@elysee.fr");
  }
}

TEST_F(QueryPlanTest, Q1PrimeAlsoMessagesCarla) {
  QueryResult r =
      Execute(scenario_->Q1Prime(), &env(), &streams()).ValueOrDie();
  // Result relation: Carla filtered out after the fact...
  EXPECT_EQ(r.relation.size(), 2u);
  // ...but the action set includes her (Example 6): 3 actions.
  EXPECT_EQ(r.actions.size(), 3u);
  const Action carla{"sendMessage", "messenger", "email",
                     Tuple{Value::String("carla@elysee.fr"),
                           Value::String("Bonjour!")}};
  EXPECT_EQ(r.actions.actions().count(carla), 1u);
}

TEST_F(QueryPlanTest, Q1AndQ1PrimeAreNotEquivalent) {
  // Example 7: same result relation, different action sets.
  QueryResult r1 = Execute(scenario_->Q1(), &env(), &streams()).ValueOrDie();
  scenario_->ClearOutboxes();
  QueryResult r1p =
      Execute(scenario_->Q1Prime(), &env(), &streams()).ValueOrDie();
  EXPECT_TRUE(r1.relation.SetEquals(r1p.relation));
  EXPECT_NE(r1.actions, r1p.actions);
}

TEST_F(QueryPlanTest, Q2AndQ2PrimeAreEquivalentWhenPassive) {
  // Example 7: takePhoto and checkPhoto passive => both action sets empty
  // and the photo relations coincide (evaluated at the same instant).
  const Timestamp tau = 3;
  QueryResult r2 =
      Execute(scenario_->Q2(), &env(), &streams(), tau).ValueOrDie();
  QueryResult r2p =
      Execute(scenario_->Q2Prime(), &env(), &streams(), tau).ValueOrDie();
  EXPECT_TRUE(r2.actions.empty());
  EXPECT_TRUE(r2p.actions.empty());
  EXPECT_TRUE(r2.relation.SetEquals(r2p.relation));
}

TEST_F(QueryPlanTest, Q2PrimeInvokesCheckPhotoOnMoreCameras) {
  // The rewriting payoff: Q2 checks only office cameras; Q2' checks all.
  const Timestamp tau = 3;
  env().registry().ResetStats();
  ASSERT_TRUE(Execute(scenario_->Q2(), &env(), &streams(), tau).ok());
  const std::uint64_t q2_physical =
      env().registry().stats().physical_invocations;
  ASSERT_TRUE(Execute(scenario_->Q2Prime(), &env(), &streams(), tau + 1).ok());
  const std::uint64_t q2p_physical =
      env().registry().stats().physical_invocations - q2_physical;
  EXPECT_LT(q2_physical, q2p_physical);
}

TEST_F(QueryPlanTest, ActiveTakePhotoBreaksQ2Equivalence) {
  // §3.3: tagging takePhoto active makes Q2 vs Q2' an equivalence question
  // about action sets. With only office cameras answering, both take the
  // same photos here - but the *potential* differs; what we verify is that
  // actions are now recorded.
  TemperatureScenarioOptions options;
  options.take_photo_active = true;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  QueryResult r = Execute(scenario->Q2(), &scenario->env(),
                          &scenario->streams())
                      .ValueOrDie();
  EXPECT_FALSE(r.actions.empty());
  for (const Action& a : r.actions.actions()) {
    EXPECT_EQ(a.prototype, "takePhoto");
  }
}

TEST_F(QueryPlanTest, ContainsActiveInvokeDetectsBarrier) {
  EXPECT_TRUE(ContainsActiveInvoke(scenario_->Q1(), env(), &streams()));
  EXPECT_FALSE(ContainsActiveInvoke(scenario_->Q2(), env(), &streams()));
  EXPECT_FALSE(
      ContainsActiveInvoke(Scan("contacts"), env(), &streams()));
}

TEST_F(QueryPlanTest, PlanToStringRoundTripRendering) {
  EXPECT_EQ(scenario_->Q1()->ToString(),
            "invoke[sendMessage](assign[text := 'Bonjour!'](select[name != "
            "'Carla'](contacts)))");
  EXPECT_EQ(Scan("cameras")->ToString(), "cameras");
  EXPECT_EQ(Window("temperatures", 1)->ToString(),
            "window[1](temperatures)");
}

TEST_F(QueryPlanTest, SetOpPlansEvaluate) {
  PlanPtr office = Select(
      Scan("sensors"),
      Formula::Compare(Operand::Attr("location"), CompareOp::kEq,
                       Operand::Const(Value::String("office"))));
  PlanPtr roof = Select(
      Scan("sensors"),
      Formula::Compare(Operand::Attr("location"), CompareOp::kEq,
                       Operand::Const(Value::String("roof"))));
  QueryResult u =
      Execute(UnionOf(office, roof), &env(), &streams()).ValueOrDie();
  EXPECT_EQ(u.relation.size(), 3u);  // sensor06, sensor07, sensor22.
  QueryResult i =
      Execute(IntersectOf(office, roof), &env(), &streams()).ValueOrDie();
  EXPECT_TRUE(i.relation.empty());
  QueryResult d =
      Execute(DifferenceOf(Scan("sensors"), office), &env(), &streams())
          .ValueOrDie();
  EXPECT_EQ(d.relation.size(), 2u);  // corridor + roof.
}

TEST_F(QueryPlanTest, GetTemperatureRealizesFromSensors) {
  // One-shot §1.2 query: temperatures for a given location.
  PlanPtr q = Project(
      Invoke(Select(Scan("sensors"),
                    Formula::Compare(Operand::Attr("location"),
                                     CompareOp::kEq,
                                     Operand::Const(Value::String("office")))),
             "getTemperature"),
      {"sensor", "temperature"});
  QueryResult r = Execute(q, &env(), &streams(), 7).ValueOrDie();
  EXPECT_EQ(r.relation.size(), 2u);  // sensor06, sensor07.
  EXPECT_TRUE(r.relation.schema().IsReal("temperature"));
  EXPECT_TRUE(r.actions.empty());  // getTemperature is passive.
}

TEST_F(QueryPlanTest, EvaluationIsDeterministicWithinInstant) {
  PlanPtr q = Invoke(Scan("sensors"), "getTemperature");
  QueryResult a = Execute(q, &env(), &streams(), 11).ValueOrDie();
  QueryResult b = Execute(q, &env(), &streams(), 11).ValueOrDie();
  EXPECT_TRUE(a.relation.SetEquals(b.relation));
  QueryResult c = Execute(q, &env(), &streams(), 12).ValueOrDie();
  EXPECT_FALSE(a.relation.SetEquals(c.relation));  // Readings moved.
}

TEST_F(QueryPlanTest, MissingRelationFailsCleanly) {
  EXPECT_EQ(Execute(Scan("nope"), &env(), &streams()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryPlanTest, StreamingRequiresContinuousContext) {
  PlanPtr q = Streaming(Scan("contacts"), StreamingType::kInsertion);
  EXPECT_EQ(Execute(q, &env(), &streams()).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serena
