// Quickstart: define a relational pervasive environment with the Serena
// DDL, populate it, and run service-oriented queries expressed both with
// the C++ plan builders and the Serena Algebra Language.
//
// This walks through the paper's motivating example (§1.2): a contact
// list whose rows carry *service references*, so one declarative query
// routes each message through the right messenger (email vs jabber).

#include <iostream>

#include "env/sim_services.h"
#include "pems/pems.h"

namespace {

constexpr const char* kDdl = R"(
  -- Table 1: prototype declarations.
  PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
  PROTOTYPE getTemperature() : (temperature REAL);

  -- Table 2: the contacts X-Relation. `text` and `sent` are VIRTUAL:
  -- they have no stored value and are realized by queries.
  EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
  ) USING BINDING PATTERNS (
    sendMessage[messenger](address, text) : (sent)
  );
)";

}  // namespace

int main() {
  using namespace serena;

  // 1. A PEMS instance owns the environment (catalog + relations +
  //    service registry + clock).
  auto pems = Pems::Create().MoveValueOrDie();
  Status status = pems->tables().ExecuteDdl(kDdl);
  if (!status.ok()) {
    std::cerr << "DDL failed: " << status << "\n";
    return 1;
  }

  // 2. Deploy messenger services on remote nodes; the core ERM discovers
  //    them over the (simulated) network.
  auto email =
      std::make_shared<MessengerService>("email",
                                         MessengerService::Kind::kEmail);
  auto jabber =
      std::make_shared<MessengerService>("jabber",
                                         MessengerService::Kind::kJabber);
  (void)pems->Deploy("mail-gateway", email);
  (void)pems->Deploy("im-gateway", jabber);
  pems->Run(2);  // Let the announcements arrive.

  // 3. Populate the contact list (Example 4). Tuples only carry values
  //    for the three real attributes.
  for (const auto& [name, address, messenger] :
       {std::tuple{"Nicolas", "nicolas@elysee.fr", "email"},
        std::tuple{"Carla", "carla@elysee.fr", "email"},
        std::tuple{"Francois", "francois@im.gouv.fr", "jabber"}}) {
    (void)pems->tables().InsertTuple(
        "contacts", Tuple{Value::String(name), Value::String(address),
                          Value::String(messenger)});
  }
  const XRelation* contacts =
      pems->env().GetRelation("contacts").ValueOrDie();
  std::cout << "contacts (virtual attributes shown as '*'):\n"
            << contacts->ToTableString() << "\n";

  // 4. Query Q1 of Table 4, in the Serena Algebra Language: send
  //    "Bonjour!" to everyone except Carla. The assignment operator α
  //    realizes `text`; the invocation operator β realizes `sent` by
  //    invoking sendMessage on each tuple's own messenger service.
  auto result = pems->queries().ExecuteOneShot(
      "invoke[sendMessage](assign[text := 'Bonjour!'](select[name != "
      "'Carla'](contacts)))");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Q1 result:\n" << result->relation.ToTableString() << "\n";
  std::cout << "Q1 action set (Def. 8): " << result->actions.ToString()
            << "\n\n";

  // 5. The physical effect: each gateway delivered its own messages.
  std::cout << "email outbox: " << email->outbox().size()
            << " message(s), jabber outbox: " << jabber->outbox().size()
            << " message(s)\n";
  for (const SentMessage& m : jabber->outbox()) {
    std::cout << "  jabber -> " << m.address << ": \"" << m.text << "\"\n";
  }

  // 6. The same plan can be built in C++ and optimized; equivalence is
  //    governed by results AND action sets (Def. 9).
  PlanPtr q1 = Invoke(
      Assign(Select(Scan("contacts"),
                    Formula::Compare(Operand::Attr("name"), CompareOp::kNe,
                                     Operand::Const(Value::String("Carla")))),
             "text", Value::String("Bonjour!")),
      "sendMessage");
  std::cout << "\nplan: " << q1->ToString() << "\n";
  return 0;
}
