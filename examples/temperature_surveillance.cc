// The paper's flagship experiment (§1.2, §5.2): temperature surveillance.
//
// Temperature sensors feed the `temperatures` stream; two continuous
// queries stand over it:
//   Q3 — when a temperature exceeds 35.5°C, message the area's manager;
//   Q4 — when a temperature drops below 12.0°C, photograph the area.
// Midway, a new sensor is discovered and joins the stream without
// restarting any query, and a sensor is "heated" like the physical
// iButtons in the original experiment.

#include <iostream>

#include "env/scenario.h"
#include "stream/executor.h"

int main() {
  using namespace serena;

  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); },
      /*feeds=*/{TemperatureScenario::kTemperatures});

  std::cout << "Continuous queries (Serena algebra):\n  Q3 = "
            << scenario->Q3()->ToString() << "\n  Q4 = "
            << scenario->Q4()->ToString() << "\n\n";

  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario->Q3());
  auto q4 = std::make_shared<ContinuousQuery>("q4", scenario->Q4());
  q4->set_sink([](Timestamp t, const XRelation& photos) {
    for (const Tuple& photo : photos.tuples()) {
      std::cout << "    [t=" << t << "] new photo delta: "
                << photo.ToString() << "\n";
    }
  });
  (void)executor.Register(q3);
  (void)executor.Register(q4);

  std::cout << "t=1..3: nominal temperatures, nothing happens\n";
  executor.Run(3);

  std::cout << "t=4: heating sensor06 (office) past the 35.5 C threshold\n";
  scenario->sensors()[1]->set_bias(25.0);
  executor.Run(2);
  for (const SentMessage& m : scenario->AllSentMessages()) {
    std::cout << "    alert at t=" << m.instant << " -> " << m.address
              << ": \"" << m.text << "\"\n";
  }

  std::cout << "t=6: office cools down; roof sensor22 freezes below 12 C\n";
  scenario->sensors()[1]->set_bias(0.0);
  scenario->sensors()[3]->set_bias(-8.0);
  executor.Run(2);
  std::cout << "    photos taken by webcam07 (roof): "
            << scenario->cameras()[2]->photos_taken() << "\n";

  std::cout << "t=8: a new office sensor is discovered mid-run\n";
  (void)scenario->AddSensor("sensor99", "office", 50.0);
  const std::size_t before = scenario->AllSentMessages().size();
  executor.Run(2);
  std::cout << "    additional alerts triggered by sensor99: "
            << scenario->AllSentMessages().size() - before << "\n";

  std::cout << "\nAccumulated Q3 action set (Def. 8):\n  "
            << q3->accumulated_actions().ToString() << "\n";
  std::cout << "\nInvocation stats: "
            << scenario->env().registry().stats().physical_invocations
            << " physical invocations over "
            << scenario->env().clock().now() << " instants\n";
  return 0;
}
