// An interactive PEMS shell: type Serena DDL and Serena Algebra Language
// statements against a live (simulated) pervasive environment.
//
//   $ ./serena_shell
//   serena> PROTOTYPE getTemperature() : (temperature REAL);
//   serena> SERVICE sensor01 IMPLEMENTS getTemperature;
//   serena> EXTENDED RELATION sensors (sensor SERVICE, location STRING,
//           temperature REAL VIRTUAL) USING BINDING PATTERNS (
//           getTemperature[sensor]() : (temperature));
//   serena> INSERT INTO sensors VALUES ('sensor01', 'office');
//   serena> invoke[getTemperature](sensors);
//   serena> \explain invoke[getTemperature](sensors)
//   serena> \register watch invoke[getTemperature](sensors)
//   serena> \tick 3
//   serena> \quit
//
// SERVICE declarations instantiate synthetic (simulated) devices, so a
// DDL-only session is fully executable. Also usable non-interactively:
// `./serena_shell < script.serena`.

#include <unistd.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/explain.h"
#include "analysis/session.h"
#include "common/string_util.h"
#include "rewrite/semantic.h"
#include "ddl/dump.h"
#include "io/csv.h"
#include "obs/meta.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "pems/monitor.h"
#include "pems/pems.h"

namespace {

using namespace serena;

void PrintHelp() {
  std::cout <<
      "Statements (end with ';'):\n"
      "  PROTOTYPE name(in...) : (out...) [ACTIVE];\n"
      "  SERVICE ref IMPLEMENTS proto[, proto...];   (synthetic device)\n"
      "  EXTENDED RELATION name (...) [USING BINDING PATTERNS (...)];\n"
      "  EXTENDED STREAM name (...);\n"
      "  INSERT INTO name VALUES (...)[, (...)];\n"
      "  DELETE FROM name [WHERE condition];\n"
      "  DROP RELATION name;   DROP STREAM name;\n"
      "  <algebra expression>;                       (one-shot query)\n"
      "Commands:\n"
      "  \\tables            list relations and streams\n"
      "  \\services          list registered services\n"
      "  \\show NAME         print a relation\n"
      "  \\explain EXPR      show the operator tree with schemas\n"
      "  \\analyze EXPR      EXPLAIN ANALYZE: run EXPR, show actual "
      "rows/timings\n"
      "  \\optimize EXPR     show the rewritten plan (semantic + classic)\n"
      "  \\validate EXPR     static diagnostics (errors + warnings)\n"
      "  \\check [-Werror=CODES] [-no-warn=CODES]\n"
      "                     lint all registered continuous queries\n"
      "  \\register NAME EXPR   register a continuous query\n"
      "  \\unregister NAME   drop a continuous query\n"
      "  \\prepare NAME EXPR    store a :param query template\n"
      "  \\exec NAME k=v ...    bind parameters and run a template\n"
      "  \\tick [N]          advance N logical instants (default 1)\n"
      "  \\stats [json]      invocation / network statistics\n"
      "  \\stats ops         per-operator runtime statistics "
      "(fingerprint, selectivity, memo)\n"
      "  \\stats save [FILE] write the stats store as JSON "
      "(default: $SERENA_STATS_FILE)\n"
      "  \\health            per-query health (lag, error streak, "
      "latency)\n"
      "  \\metrics [prom]    telemetry registry as JSON (or Prometheus "
      "text)\n"
      "  \\dump              environment as a reloadable DDL script\n"
      "  \\save FILE         write the DDL dump to a file\n"
      "  \\load FILE         execute a DDL script from a file\n"
      "  \\csv NAME          relation as CSV\n"
      "  \\help  \\quit\n";
}

bool IsDdl(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  const std::string lower = ToLower(head);
  return lower == "prototype" || lower == "service" || lower == "extended" ||
         lower == "insert" || lower == "delete" || lower == "drop";
}

void RunStatement(Pems& pems, const std::string& statement) {
  if (IsDdl(statement)) {
    const Status status = pems.tables().ExecuteDdl(statement);
    std::cout << (status.ok() ? "ok" : status.ToString()) << "\n";
    return;
  }
  auto result = pems.queries().ExecuteOneShot(statement);
  if (!result.ok()) {
    std::cout << result.status() << "\n";
    return;
  }
  std::cout << result->relation.ToTableString();
  std::cout << result->relation.size() << " tuple(s)";
  if (!result->actions.empty()) {
    std::cout << ", actions: " << result->actions.ToString();
  }
  std::cout << "\n";
}

void RunCommand(Pems& pems, const std::string& line) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  std::string rest;
  std::getline(in, rest);
  const std::string arg(Trim(rest));

  if (command == "\\help") {
    PrintHelp();
  } else if (command == "\\tables") {
    for (const std::string& name : pems.env().RelationNames()) {
      const XRelation* r = pems.env().GetRelation(name).ValueOrDie();
      std::cout << "  " << name << " (" << r->size() << " tuples, "
                << r->schema().binding_patterns().size()
                << " binding patterns)\n";
    }
    for (const std::string& name : pems.streams().StreamNames()) {
      std::cout << "  " << name << " (stream)\n";
    }
  } else if (command == "\\services") {
    for (const std::string& ref : pems.env().registry().ServiceRefs()) {
      auto service = pems.env().registry().Lookup(ref).ValueOrDie();
      std::cout << "  " << ref << " implements";
      for (const auto& proto : service->prototypes()) {
        std::cout << " " << proto->name();
      }
      std::cout << "\n";
    }
  } else if (command == "\\show") {
    auto relation = pems.env().GetRelation(arg);
    if (!relation.ok()) {
      std::cout << relation.status() << "\n";
    } else {
      std::cout << (*relation)->ToTableString();
    }
  } else if (command == "\\explain" || command == "\\optimize") {
    auto plan = ParseAlgebra(arg);
    if (!plan.ok()) {
      std::cout << plan.status() << "\n";
      return;
    }
    PlanPtr shown = *plan;
    if (command == "\\optimize") {
      // Semantic pass first — it prints its EXPLAIN-level equivalence
      // proofs — then the classic rule rewriter.
      auto semantic = SemanticOptimize(shown, pems.env(), &pems.streams());
      if (!semantic.ok()) {
        std::cout << semantic.status() << "\n";
        return;
      }
      if (!semantic->steps.empty()) {
        std::cout << (semantic->reverted ? "semantic rewrites (reverted):\n"
                                         : "semantic rewrites:\n")
                  << RenderSemanticSteps(semantic->steps);
      }
      Rewriter rewriter(&pems.env(), &pems.streams());
      auto optimized = rewriter.Optimize(semantic->plan);
      if (!optimized.ok()) {
        std::cout << optimized.status() << "\n";
        return;
      }
      shown = *optimized;
    }
    std::cout << ExplainPlan(shown, pems.env(), &pems.streams());
  } else if (command == "\\analyze") {
    auto plan = ParseAlgebra(arg);
    if (!plan.ok()) {
      std::cout << plan.status() << "\n";
      return;
    }
    // Runs the query (active side effects included) and annotates each
    // node with its actual rows, timings and invocation counts.
    std::cout << ExplainAnalyzePlan(*plan, &pems.env(), &pems.streams());
  } else if (command == "\\validate") {
    auto plan = ParseAlgebra(arg);
    if (!plan.ok()) {
      std::cout << plan.status() << "\n";
      return;
    }
    analysis::Session session(&pems.env(), &pems.streams());
    auto diagnostics = session.AnalyzePlan(*plan);
    if (!diagnostics.ok()) {
      std::cout << diagnostics.status() << "\n";
    } else if (diagnostics->empty()) {
      std::cout << "ok: no findings\n";
    } else {
      for (const Diagnostic& d : *diagnostics) {
        std::cout << "  " << d.ToString() << "\n";
      }
    }
  } else if (command == "\\check") {
    // Re-analyze every registered continuous query plus their
    // feeds/reads graph — the static gate's view, warnings included.
    // Optional args: -Werror=CODES (or bare -Werror) promotes warnings
    // to errors, -no-warn=CODES suppresses codes.
    std::string werror_list;
    std::string no_warn_list;
    {
      std::istringstream args(arg);
      std::string flag;
      while (args >> flag) {
        if (flag == "-Werror" || flag == "--werror") {
          werror_list = "all";
        } else if (flag.rfind("-Werror=", 0) == 0) {
          werror_list = flag.substr(8);
        } else if (flag.rfind("--werror=", 0) == 0) {
          werror_list = flag.substr(9);
        } else if (flag.rfind("-no-warn=", 0) == 0) {
          no_warn_list = flag.substr(9);
        } else if (flag.rfind("--no-warn=", 0) == 0) {
          no_warn_list = flag.substr(10);
        } else {
          std::cout << "unknown \\check option " << flag << "\n";
          return;
        }
      }
    }
    auto severity = analysis::SeverityConfig::Parse(werror_list, no_warn_list);
    if (!severity.ok()) {
      std::cout << severity.status() << "\n";
      return;
    }
    ContinuousExecutor& executor = pems.queries().executor();
    analysis::AnalyzeOptions options;
    options.context = AnalysisContext::kContinuous;
    options.severity = *severity;
    options.source_fed_streams = executor.SourceFedStreams();
    analysis::Session session(&pems.env(), &pems.streams(), options);
    for (const std::string& name : executor.QueryNames()) {
      auto query = executor.GetQuery(name);
      if (!query.ok()) continue;
      session.CommitQuery((*query)->name(), (*query)->plan(),
                          (*query)->feeds());
    }
    std::size_t findings = 0;
    auto diagnostics = session.CheckAll();
    if (!diagnostics.ok()) {
      std::cout << diagnostics.status() << "\n";
      return;
    }
    for (const Diagnostic& d : *diagnostics) {
      std::cout << "  " << d.ToString() << "\n";
      ++findings;
    }
    std::cout << session.query_count() << " quer"
              << (session.query_count() == 1 ? "y" : "ies") << " checked, "
              << findings << " finding(s)\n";
  } else if (command == "\\register") {
    std::istringstream args(arg);
    std::string name;
    args >> name;
    std::string expr;
    std::getline(args, expr);
    const Status status = pems.queries().RegisterContinuous(
        name, Trim(expr),
        [name](Timestamp t, const XRelation& result) {
          if (!result.empty()) {
            std::cout << "[" << name << " @t=" << t << "]\n"
                      << result.ToTableString();
          }
        });
    std::cout << (status.ok() ? "registered" : status.ToString()) << "\n";
  } else if (command == "\\unregister") {
    const Status status = pems.queries().UnregisterContinuous(arg);
    std::cout << (status.ok() ? "unregistered" : status.ToString()) << "\n";
  } else if (command == "\\prepare") {
    std::istringstream args(arg);
    std::string name;
    args >> name;
    std::string expr;
    std::getline(args, expr);
    const Status status = pems.queries().Prepare(name, Trim(expr));
    if (status.ok()) {
      auto params = pems.queries().PreparedParameters(name).ValueOrDie();
      std::cout << "prepared with " << params.size() << " parameter(s)";
      for (const std::string& p : params) std::cout << " :" << p;
      std::cout << "\n";
    } else {
      std::cout << status << "\n";
    }
  } else if (command == "\\exec") {
    std::istringstream args(arg);
    std::string name;
    args >> name;
    std::map<std::string, Value> bindings;
    std::string pair;
    while (args >> pair) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        std::cout << "expected k=v, got " << pair << "\n";
        return;
      }
      // Values are typed like algebra literals; bare words are strings.
      const std::string raw = pair.substr(eq + 1);
      Value value = Value::String(raw);
      if (raw == "true" || raw == "false") {
        value = Value::Bool(raw == "true");
      } else if (raw.find_first_not_of("-0123456789.") ==
                 std::string::npos) {
        value = raw.find('.') == std::string::npos
                    ? Value::Int(std::atoll(raw.c_str()))
                    : Value::Real(std::atof(raw.c_str()));
      }
      bindings.emplace(pair.substr(0, eq), std::move(value));
    }
    auto result = pems.queries().ExecutePrepared(name, bindings);
    if (!result.ok()) {
      std::cout << result.status() << "\n";
    } else {
      std::cout << result->relation.ToTableString();
      if (!result->actions.empty()) {
        std::cout << "actions: " << result->actions.ToString() << "\n";
      }
    }
  } else if (command == "\\tick") {
    const int n = arg.empty() ? 1 : std::atoi(arg.c_str());
    const Timestamp now = pems.Run(n);
    std::cout << "t=" << now << "\n";
  } else if (command == "\\stats") {
    if (arg == "json") {
      std::cout << SnapshotMetrics(pems).ToJson() << "\n";
    } else if (arg == "ops") {
      // The runtime statistics store: cross-run per-operator aggregates
      // keyed by stable fingerprint (also queryable as
      // sys_operator_stats).
      const auto operators = obs::StatsStore::Global().Snapshot();
      if (operators.empty()) {
        std::cout << "no operator statistics yet (run some queries)\n";
      }
      for (const obs::OperatorStats& op : operators) {
        std::cout << "  " << op.fingerprint << " " << op.label
                  << ": evals " << op.evals << ", rows in/out "
                  << op.rows_in << "/" << op.rows_out << ", sel "
                  << op.selectivity() << ", time "
                  << static_cast<double>(op.wall_ns) / 1e6 << "ms";
        if (op.invocations > 0) {
          std::cout << ", invocations " << op.invocations << " (memo "
                    << op.memo_hit_rate() * 100 << "%)";
        }
        if (op.errors > 0) std::cout << ", errors " << op.errors;
        std::cout << "\n";
      }
      for (const obs::BetaLatencyProfile& beta :
           obs::StatsStore::Global().BetaProfiles()) {
        std::cout << "  β " << beta.prototype << ": " << beta.count
                  << " physical calls, mean " << beta.mean_ns / 1e6
                  << "ms, p99 " << static_cast<double>(beta.p99_ns) / 1e6
                  << "ms, memo " << beta.memo_hit_rate() * 100 << "%\n";
      }
    } else if (arg == "save" || arg.rfind("save ", 0) == 0) {
      const std::string path(Trim(arg.substr(4)));
      if (!path.empty()) {
        const Status status = obs::StatsStore::Global().SaveToFile(path);
        std::cout << (status.ok() ? "stats saved to " + path
                                  : status.ToString())
                  << "\n";
      } else if (obs::StatsStore::Global().MaybeSaveEnvFile()) {
        std::cout << "stats saved to $SERENA_STATS_FILE\n";
      } else {
        std::cout << "nothing saved (set SERENA_STATS_FILE or pass a "
                     "path)\n";
      }
    } else {
      std::cout << SnapshotMetrics(pems).ToString();
    }
  } else if (command == "\\health") {
    const auto snapshots = pems.queries().executor().health().Snapshots();
    if (snapshots.empty()) {
      std::cout << "no continuous queries registered\n";
    }
    for (const QueryHealth::QuerySnapshot& q : snapshots) {
      std::cout << "  " << q.name << ": last instant "
                << q.last_completed_instant << ", lag " << q.lag
                << ", streak " << q.error_streak << ", errors "
                << q.total_errors << ", steps " << q.steps << ", p50 "
                << q.p50_step_ns / 1000.0 << "us, p99 "
                << q.p99_step_ns / 1000.0 << "us, rows in/out per step "
                << q.rows_in_rate << "/" << q.rows_out_rate << "\n";
    }
  } else if (command == "\\metrics") {
    if (arg == "prom") {
      // Prometheus text exposition, same as SERENA_METRICS_FILE dumps.
      std::cout << obs::MetricsRegistry::Global().DumpPrometheus();
    } else {
      // The raw process-wide registry (see docs/OBSERVABILITY.md).
      std::cout << obs::MetricsRegistry::Global().ToJson() << "\n";
    }
  } else if (command == "\\dump") {
    std::cout << DumpEnvironment(pems.env(), &pems.streams());
  } else if (command == "\\save") {
    std::ofstream out(arg);
    if (!out) {
      std::cout << "cannot write " << arg << "\n";
    } else {
      out << DumpEnvironment(pems.env(), &pems.streams());
      std::cout << "saved to " << arg << "\n";
    }
  } else if (command == "\\load") {
    std::ifstream in(arg);
    if (!in) {
      std::cout << "cannot read " << arg << "\n";
    } else {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const Status status = pems.tables().ExecuteDdl(buffer.str());
      std::cout << (status.ok() ? "loaded" : status.ToString()) << "\n";
    }
  } else if (command == "\\csv") {
    auto relation = pems.env().GetRelation(arg);
    if (!relation.ok()) {
      std::cout << relation.status() << "\n";
    } else {
      auto csv = ToCsv(**relation);
      std::cout << (csv.ok() ? *csv : csv.status().ToString());
    }
  } else {
    std::cout << "unknown command " << command << " (try \\help)\n";
  }
}

}  // namespace

int main() {
  auto pems = Pems::Create().MoveValueOrDie();
  // The shell's PEMS observes itself: sys_metrics / sys_spans /
  // sys_query_health refresh each tick and are queryable like any other
  // relation (see docs/OBSERVABILITY.md).
  const Status meta_status = obs::RegisterMetaRelations(
      &pems->env(), &pems->queries().executor());
  if (!meta_status.ok()) {
    std::cerr << "meta-relations unavailable: " << meta_status << "\n";
  }
  const bool interactive = isatty(0);
  if (interactive) {
    std::cout << "Serena PEMS shell. \\help for help, \\quit to exit.\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::cout << (buffer.empty() ? "serena> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    // Comment lines, as in `.serena` scripts (see SplitScript).
    if (trimmed[0] == '#' || trimmed.rfind("--", 0) == 0) continue;

    if (buffer.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      RunCommand(*pems, trimmed);
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Statements are ';'-terminated.
    const std::string_view current = Trim(buffer);
    if (!current.empty() && current.back() == ';') {
      std::string statement(current);
      if (!IsDdl(statement)) {
        statement.pop_back();  // Algebra expressions carry no ';'.
      }
      RunStatement(*pems, statement);
      buffer.clear();
    }
  }
  return 0;
}
