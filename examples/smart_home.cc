// A domain the paper never mentions, built purely on the public API — the
// test of the paper's generality claim: smart-home energy management.
//
//   * power meters (passive getPower) attached to appliances,
//   * switches (ACTIVE setState) that can turn appliances off,
//   * a `budget` relation assigning each room a power budget,
//   * a derived stream of per-room consumption (aggregated), and
//   * a standing query that switches off low-priority appliances in rooms
//     exceeding their budget — with the action set as the audit log.

#include <cmath>
#include <iostream>

#include "pems/pems.h"
#include "service/lambda_service.h"

namespace {

using namespace serena;

// getPower is STREAMING: the meter provides a stream of readings, so
// continuous queries re-poll it every instant instead of reusing the
// first reading for standing tuples (§4.2 vs the §7 extension).
constexpr const char* kDdl = R"(
  PROTOTYPE getPower() : (watts REAL) STREAMING;
  PROTOTYPE setState(state STRING) : (changed BOOLEAN) ACTIVE;

  EXTENDED RELATION appliances (
    meter SERVICE,
    room STRING,
    priority INTEGER,
    watts REAL VIRTUAL,
    state STRING VIRTUAL,
    changed BOOLEAN VIRTUAL
  ) USING BINDING PATTERNS (
    getPower[meter]() : (watts),
    setState[meter](state) : (changed)
  );

  EXTENDED RELATION budget ( room STRING, max_watts REAL );
  INSERT INTO budget VALUES ('kitchen', 2500.0), ('livingroom', 800.0);

  EXTENDED STREAM consumption ( room STRING, watts REAL );
)";

/// An appliance whose meter reading follows a deterministic profile and
/// whose switch really changes its state.
ServicePtr MakeAppliance(const std::string& id, double base_watts,
                         PrototypePtr get_power, PrototypePtr set_state) {
  auto svc = std::make_shared<LambdaService>(id);
  auto on = std::make_shared<bool>(true);
  svc->AddMethod(get_power,
                 [base_watts, on](const Tuple&, Timestamp now) {
                   const double wobble =
                       40.0 * std::sin(static_cast<double>(now) / 3.0);
                   const double watts =
                       *on ? base_watts + wobble : 1.5;  // Standby draw.
                   return Result<std::vector<Tuple>>(
                       std::vector<Tuple>{Tuple{Value::Real(watts)}});
                 });
  svc->AddMethod(set_state, [on](const Tuple& input, Timestamp) {
    const bool turn_on = input[0].string_value() == "on";
    const bool changed = (*on != turn_on);
    *on = turn_on;
    return Result<std::vector<Tuple>>(
        std::vector<Tuple>{Tuple{Value::Bool(changed)}});
  });
  return svc;
}

}  // namespace

int main() {
  auto pems = Pems::Create().MoveValueOrDie();
  if (Status s = pems->tables().ExecuteDdl(kDdl); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto get_power = pems->env().GetPrototype("getPower").ValueOrDie();
  auto set_state = pems->env().GetPrototype("setState").ValueOrDie();

  struct Spec {
    const char* id;
    const char* room;
    int priority;  // Lower = expendable.
    double watts;
  };
  for (const Spec& spec : {Spec{"oven", "kitchen", 9, 2000.0},
                           Spec{"dishwasher", "kitchen", 3, 1200.0},
                           Spec{"tv", "livingroom", 5, 150.0},
                           Spec{"heater", "livingroom", 2, 900.0}}) {
    (void)pems->Deploy("node-" + std::string(spec.room),
                       MakeAppliance(spec.id, spec.watts, get_power,
                                     set_state));
    (void)pems->tables().InsertTuple(
        "appliances", Tuple{Value::String(spec.id), Value::String(spec.room),
                            Value::Int(spec.priority)});
  }
  pems->Run(2);  // Discovery.

  // Stage 1 (derived stream): per-room consumption, every instant.
  (void)pems->queries().RegisterContinuousInto(
      "metering",
      "aggregate[room; sum(watts) -> watts](invoke[getPower](appliances))",
      "consumption");

  // Stage 2: rooms over budget -> switch off their lowest-priority
  // appliances. setState is ACTIVE: the rewriter will never push the
  // budget filter below it, and every switch-off lands in the action set.
  (void)pems->queries().RegisterContinuous(
      "enforcer",
      "invoke[setState](assign[state := 'off'](select[priority <= 3 and "
      "watts > max_watts](join(window[1](consumption), join(budget, "
      "rename[watts -> appliance_watts](invoke[getPower]("
      "appliances)))))))");

  for (int step = 0; step < 4; ++step) {
    pems->Tick();
    auto rooms = pems->queries().ExecuteOneShot(
        "aggregate[room; sum(watts) -> total](window[1](consumption))");
    if (rooms.ok() && !rooms->relation.empty()) {
      std::cout << "[t=" << pems->env().clock().now() << "]\n"
                << rooms->relation.ToTableString();
    }
    for (const auto& [name, status] :
         pems->queries().executor().last_errors()) {
      std::cerr << "  query " << name << " failed: " << status << "\n";
    }
  }

  auto enforcer = pems->queries().GetContinuous("enforcer").ValueOrDie();
  std::cout << "\nswitch-off audit log (the action set, Def. 8):\n";
  for (const Action& action : enforcer->accumulated_actions().actions()) {
    std::cout << "  " << action.ToString() << "\n";
  }
  return 0;
}
