// Query equivalence and rewriting (§3.2-3.3, Tables 4-5).
//
// Shows the two core results of the paper's optimization story:
//  * Q1 vs Q1' — same result relation, DIFFERENT action sets (Example 6):
//    filtering before/after an ACTIVE invocation is not equivalent, so the
//    rewriter refuses to push the selection.
//  * Q2' → Q2 — with PASSIVE photo prototypes, pushing selections below
//    the invocation is equivalence-preserving and saves invocations.

#include <iostream>

#include "env/scenario.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"

int main() {
  using namespace serena;

  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Environment& env = scenario->env();
  StreamStore& streams = scenario->streams();
  Rewriter rewriter(&env, &streams);

  std::cout << "Q1  = " << scenario->Q1()->ToString() << "\n";
  std::cout << "Q1' = " << scenario->Q1Prime()->ToString() << "\n\n";

  QueryResult r1 = Execute(scenario->Q1(), &env, &streams, 1).ValueOrDie();
  scenario->ClearOutboxes();
  QueryResult r1p =
      Execute(scenario->Q1Prime(), &env, &streams, 1).ValueOrDie();
  std::cout << "Q1  actions: " << r1.actions.ToString() << "\n";
  std::cout << "Q1' actions: " << r1p.actions.ToString() << "\n";
  std::cout << "same result relation: "
            << (r1.relation.SetEquals(r1p.relation) ? "yes" : "no")
            << ", same action sets: "
            << (r1.actions == r1p.actions ? "yes" : "no")
            << "  =>  NOT equivalent (Example 6)\n\n";

  PlanPtr q1p_opt = rewriter.Optimize(scenario->Q1Prime()).ValueOrDie();
  std::cout << "optimizer on Q1': " << q1p_opt->ToString()
            << "\n  (selection NOT pushed below the active sendMessage)\n\n";

  std::cout << "Q2' = " << scenario->Q2Prime()->ToString() << "\n";
  PlanPtr q2_opt = rewriter.Optimize(scenario->Q2Prime()).ValueOrDie();
  std::cout << "optimized: " << q2_opt->ToString() << "\n";

  env.registry().ResetStats();
  (void)Execute(scenario->Q2Prime(), &env, &streams, 2);
  const std::uint64_t naive = env.registry().stats().physical_invocations;
  env.registry().ResetStats();
  (void)Execute(q2_opt, &env, &streams, 3);
  const std::uint64_t optimized =
      env.registry().stats().physical_invocations;
  std::cout << "physical invocations: " << naive << " (naive) vs "
            << optimized << " (optimized)\n";

  EquivalenceReport report =
      CheckEquivalence(scenario->Q2Prime(), q2_opt, &env, &streams, 4)
          .ValueOrDie();
  std::cout << "Def. 9 check: " << report.ToString() << "\n";

  auto naive_cost = EstimateCost(scenario->Q2Prime(), env, &streams)
                        .ValueOrDie();
  auto opt_cost = EstimateCost(q2_opt, env, &streams).ValueOrDie();
  std::cout << "cost model: " << naive_cost.Total() << " -> "
            << opt_cost.Total() << " (estimated invocations "
            << naive_cost.invocations << " -> " << opt_cost.invocations
            << ")\n";
  return 0;
}
