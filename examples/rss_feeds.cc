// The second §5.2 experiment: RSS feeds as streams.
//
// Wrapper services (one per feed) turn polled items into the `news`
// stream. A continuous keyword query keeps "the last items containing a
// given word within a window"; a second standing query forwards matching
// items to a contact as messages — each item exactly once, even though it
// stays in the window for many instants (§4.2 delta semantics).

#include <iostream>

#include "env/scenario.h"
#include "stream/executor.h"

int main() {
  using namespace serena;

  RssScenarioOptions options;
  options.items_per_instant = 3;
  options.keyword_rate = 0.2;
  auto scenario = RssScenario::Build(options).MoveValueOrDie();

  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource([&](Timestamp t) { return scenario->PumpNews(t); },
                     /*feeds=*/{RssScenario::kNews});

  // "Items mentioning Obama within the last 12 instants."
  PlanPtr keyword_plan = scenario->KeywordQuery("Obama", 12);
  std::cout << "keyword query: " << keyword_plan->ToString() << "\n\n";
  auto keyword = std::make_shared<ContinuousQuery>("obama", keyword_plan);
  keyword->set_sink([](Timestamp t, const XRelation& items) {
    std::cout << "[t=" << t << "] in-window matches: " << items.size()
              << "\n";
  });
  (void)executor.Register(keyword);

  // Forward matches to Carla by mail.
  auto forward = std::make_shared<ContinuousQuery>(
      "forward", scenario->ForwardQuery("Obama", 12, "Carla"));
  (void)executor.Register(forward);

  executor.Run(15);

  const auto& outbox = scenario->email()->outbox();
  std::cout << "\nforwarded to carla@elysee.fr: " << outbox.size()
            << " distinct items\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(outbox.size(), 5); ++i) {
    std::cout << "  [t=" << outbox[i].instant << "] \"" << outbox[i].text
              << "\"\n";
  }
  if (outbox.size() > 5) std::cout << "  ...\n";
  return 0;
}
