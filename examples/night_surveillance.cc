// The complete §5.2 surveillance pipeline in ONE declarative continuous
// query (Q5): when a temperature exceeds the threshold, photograph the
// area and send the photo to the area's manager — combining the
// temperatures stream, three X-Relations (surveillance, contacts,
// cameras) and two invocation operators on different per-tuple services
// (the camera, then the contact's own messenger).

#include <iostream>

#include "algebra/explain.h"
#include "env/scenario.h"
#include "stream/executor.h"

int main() {
  using namespace serena;

  TemperatureScenarioOptions options;
  options.photo_messaging = true;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();

  PlanPtr q5 = scenario->Q5();
  std::cout << "Q5 (one declarative query for the whole scenario):\n"
            << ExplainPlan(q5, scenario->env(), &scenario->streams())
            << "\n";

  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); },
      /*feeds=*/{TemperatureScenario::kTemperatures});
  auto query = std::make_shared<ContinuousQuery>("q5", q5);
  (void)executor.Register(query);

  std::cout << "t=1..2: nominal, no alerts\n";
  executor.Run(2);

  std::cout << "t=3: office overheats (sensor06 heated like the paper's "
               "physical iButton)\n";
  scenario->sensors()[1]->set_bias(25.0);
  executor.Run(2);

  for (const SentMessage& m : scenario->AllSentMessages()) {
    std::cout << "  [t=" << m.instant << "] " << m.address << " <- \""
              << m.text << "\" with a " << m.photo_bytes
              << "-byte photo\n";
  }
  std::cout << "photos taken by the office camera: "
            << scenario->cameras()[0]->photos_taken() << "\n";
  std::cout << "\naction set (Def. 8):\n  "
            << query->accumulated_actions().ToString() << "\n";
  return 0;
}
