// Dynamic service discovery through the full PEMS stack (Figure 1).
//
// Local ERMs on device nodes announce their services over the simulated
// network (UPnP-style alive/byebye); the core ERM registers proxies; a
// *discovery query* keeps the `thermometers` X-Relation synchronized with
// the set of services implementing getTemperature — while a continuous
// query reads all of them every instant.

#include <iostream>

#include "env/sim_services.h"
#include "pems/pems.h"

int main() {
  using namespace serena;

  auto pems = Pems::Create().MoveValueOrDie();
  (void)pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL);");
  (void)pems->queries().RegisterDiscoveryQuery("thermometers",
                                               "getTemperature");

  // A standing query over whatever thermometers currently exist.
  (void)pems->queries().RegisterContinuous(
      "readings", "invoke[getTemperature](thermometers)",
      [](Timestamp t, const XRelation& readings) {
        std::cout << "[t=" << t << "] " << readings.size()
                  << " thermometer(s) answered\n";
      });

  pems->Run(2);  // No devices yet: 0 thermometers.

  std::cout << "-- deploying sensor01 and sensor06 on two nodes\n";
  (void)pems->Deploy("node-corridor",
                     std::make_shared<TemperatureSensorService>("sensor01",
                                                                19.0, 1));
  auto office_erm = pems->CreateLocalErm("node-office").MoveValueOrDie();
  (void)office_erm->Host(pems->env().clock().now(),
                         std::make_shared<TemperatureSensorService>(
                             "sensor06", 21.0, 2));
  pems->Run(3);

  std::cout << "-- sensor06 leaves (byebye)\n";
  (void)office_erm->Evict(pems->env().clock().now(), "sensor06");
  pems->Run(3);

  std::cout << "-- discovery statistics\n";
  std::cout << "   services discovered: "
            << pems->erm().services_discovered()
            << ", lost: " << pems->erm().services_lost() << "\n";
  const NetworkStats& net = pems->network().stats();
  std::cout << "   network: " << net.sent << " control messages sent, "
            << net.delivered << " delivered, "
            << net.invocation_round_trips << " invocation round trips\n";
  return 0;
}
