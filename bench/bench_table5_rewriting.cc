// Reproduces Table 5 (rewriting rules for the realization operators):
// each rule shown before/after with an empirical Def. 9 equivalence
// verdict, plus the headline payoff — physical invocations saved by
// pushing selections below passive invocations — swept over selectivity.
// Also measures rewriter latency.

#include "bench_util.h"
#include "common/string_util.h"
#include "env/scenario.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"

namespace serena {
namespace {

void ShowRule(const char* label, const PlanPtr& before,
              TemperatureScenario* scenario, Timestamp instant) {
  Rewriter rewriter(&scenario->env(), &scenario->streams());
  bool changed = false;
  PlanPtr after = rewriter.RewriteOnce(before, &changed).ValueOrDie();
  std::printf("%s\n  before: %s\n  after:  %s\n", label,
              before->ToString().c_str(), after->ToString().c_str());
  if (changed) {
    EquivalenceReport report =
        CheckEquivalence(before, after, &scenario->env(),
                         &scenario->streams(), instant)
            .ValueOrDie();
    std::printf("  Def. 9: %s\n", report.ToString().c_str());
    bench::RecordRepro(StringFormat("rule_%s_equivalent", label),
                       report.equivalent() ? 1 : 0, "bool");
  } else {
    std::printf("  (rule correctly refused: side condition failed)\n");
  }
  bench::RecordRepro(StringFormat("rule_%s_applied", label), changed ? 1 : 0,
                     "bool");
}

void ReproduceTable5() {
  bench::PrintHeader("Table 5",
                     "Rewriting rules with assignment and invocation "
                     "operators; every applied rewrite is checked for "
                     "Def. 9 equivalence (result AND action set).");
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();

  auto name_ne = Formula::Compare(Operand::Attr("name"), CompareOp::kNe,
                                  Operand::Const(Value::String("Carla")));
  auto area_eq = Formula::Compare(Operand::Attr("area"), CompareOp::kEq,
                                  Operand::Const(Value::String("office")));

  ShowRule("sigma over alpha (push: A not in F)",
           Select(Assign(Scan("contacts"), "text", Value::String("x")),
                  name_ne),
           scenario.get(), 1);
  ShowRule("sigma over alpha (blocked: A in F)",
           Select(Assign(Scan("contacts"), "text", Value::String("x")),
                  Formula::Compare(Operand::Attr("text"), CompareOp::kEq,
                                   Operand::Const(Value::String("x")))),
           scenario.get(), 2);
  ShowRule("pi over alpha (push: A, B in L)",
           Project(Assign(Scan("contacts"), "text", Value::String("x")),
                   {"name", "text"}),
           scenario.get(), 3);
  ShowRule("sigma over beta (push: passive, F without outputs)",
           Select(Invoke(Scan("cameras"), "checkPhoto"), area_eq),
           scenario.get(), 4);
  ShowRule("sigma over beta (blocked: ACTIVE pattern)",
           Select(Invoke(Assign(Scan("contacts"), "text",
                                Value::String("x")),
                         "sendMessage"),
                  name_ne),
           scenario.get(), 5);
  ShowRule("pi over beta (push: pattern attributes kept)",
           Project(Invoke(Scan("cameras"), "checkPhoto"),
                   {"camera", "area", "quality", "delay"}),
           scenario.get(), 6);
  ShowRule("sigma over join (push into covering side)",
           Select(Join(Scan("sensors"), Scan("surveillance")), name_ne),
           scenario.get(), 7);
  ShowRule("alpha over join (push: A only in R1)",
           Assign(Join(Scan("contacts"), Scan("surveillance")), "text",
                  Value::String("x")),
           scenario.get(), 8);
  ShowRule("beta past join (defer: passive, outputs unshared)",
           Join(Invoke(Scan("sensors"), "getTemperature"),
                Scan("surveillance")),
           scenario.get(), 9);

  bench::PrintSection(
      "invocation savings from pushdown (Q2'-style plans, varying camera "
      "population; selection keeps only 'office' cameras)");
  std::printf("%-10s %-12s %-12s %-10s\n", "cameras", "naive-invk",
              "optimized", "saving");
  for (int extra : {0, 8, 32, 128}) {
    TemperatureScenarioOptions options;
    options.extra_areas = 13;  // Office cameras become a small fraction.
    options.extra_cameras = extra;
    auto s = TemperatureScenario::Build(options).MoveValueOrDie();
    Rewriter rewriter(&s->env(), &s->streams());
    PlanPtr naive = s->Q2Prime();
    PlanPtr optimized = rewriter.Optimize(naive).ValueOrDie();

    s->env().registry().ResetStats();
    (void)Execute(naive, &s->env(), &s->streams(), 1);
    const std::uint64_t naive_inv =
        s->env().registry().stats().physical_invocations;
    s->env().registry().ResetStats();
    (void)Execute(optimized, &s->env(), &s->streams(), 2);
    const std::uint64_t opt_inv =
        s->env().registry().stats().physical_invocations;
    std::printf("%-10d %-12llu %-12llu %.1fx\n", 3 + extra,
                static_cast<unsigned long long>(naive_inv),
                static_cast<unsigned long long>(opt_inv),
                opt_inv > 0 ? static_cast<double>(naive_inv) /
                                  static_cast<double>(opt_inv)
                            : 0.0);
    bench::RecordRepro(StringFormat("naive_invocations_c%d", 3 + extra),
                       static_cast<double>(naive_inv), "invocations");
    bench::RecordRepro(StringFormat("opt_invocations_c%d", 3 + extra),
                       static_cast<double>(opt_inv), "invocations");
  }
  std::printf(
      "(shape check: savings grow with the non-office camera population, "
      "as §3.3 predicts)\n");
}

// ---------------------------------------------------------------------------

void BM_RewriteOnce(benchmark::State& state) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Rewriter rewriter(&scenario->env(), &scenario->streams());
  const PlanPtr plan = scenario->Q2Prime();
  for (auto _ : state) {
    bool changed = false;
    auto rewritten = rewriter.RewriteOnce(plan, &changed);
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_RewriteOnce);

void BM_OptimizeFixpoint(benchmark::State& state) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Rewriter rewriter(&scenario->env(), &scenario->streams());
  const PlanPtr plan = scenario->Q4();  // Deepest canonical plan.
  for (auto _ : state) {
    auto optimized = rewriter.Optimize(plan);
    benchmark::DoNotOptimize(optimized);
  }
}
BENCHMARK(BM_OptimizeFixpoint);

void BM_CostEstimate(benchmark::State& state) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  const PlanPtr plan = scenario->Q2Prime();
  for (auto _ : state) {
    auto cost =
        EstimateCost(plan, scenario->env(), &scenario->streams());
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_CostEstimate);

void BM_EquivalenceCheck(benchmark::State& state) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  const PlanPtr q2 = scenario->Q2();
  const PlanPtr q2p = scenario->Q2Prime();
  Timestamp instant = 0;
  for (auto _ : state) {
    auto report = CheckEquivalence(q2, q2p, &scenario->env(),
                                   &scenario->streams(), ++instant);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_EquivalenceCheck);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceTable5(); });
}
