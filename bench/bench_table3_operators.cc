// Reproduces Table 3: the six Serena operator definitions (a)-(f),
// demonstrated on the paper's relations (schema propagation + binding
// pattern rules), then measures per-operator throughput as input
// cardinality grows.

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "env/scenario.h"

namespace serena {
namespace {

void DescribeResult(const char* label, const XRelation& result) {
  std::vector<std::string> bps;
  for (const BindingPattern& bp : result.schema().binding_patterns()) {
    bps.push_back(bp.ToString());
  }
  std::printf("%-14s |S|=%zu  real={%s}  virtual={%s}  BP={%s}\n", label,
              result.size(),
              Join(result.schema().RealNames(), ",").c_str(),
              Join(result.schema().VirtualNames(), ",").c_str(),
              Join(bps, "; ").c_str());
  // Every Table 3 rule lands three exact records: cardinality plus the
  // two schema-partition figures the rule is about.
  bench::RecordRepro(std::string(label) + "_rows",
                     static_cast<double>(result.size()), "tuples");
  bench::RecordRepro(
      std::string(label) + "_virtual_attrs",
      static_cast<double>(result.schema().VirtualNames().size()), "attrs");
  bench::RecordRepro(
      std::string(label) + "_binding_patterns",
      static_cast<double>(result.schema().binding_patterns().size()),
      "patterns");
}

void ReproduceTable3() {
  bench::PrintHeader(
      "Table 3",
      "Operator semantics over the motivating-example X-Relations: output "
      "schema partition and binding-pattern propagation per rule (a)-(f).");
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Environment& env = scenario->env();
  const XRelation& contacts = *env.GetRelation("contacts").ValueOrDie();
  const XRelation& cameras = *env.GetRelation("cameras").ValueOrDie();

  // (set ops)
  DescribeResult("union", Union(contacts, contacts).ValueOrDie());
  // (a) projection: dropping `address` invalidates sendMessage.
  DescribeResult("project(a)",
                 Project(contacts, {"name", "messenger", "text", "sent"})
                     .ValueOrDie());
  // (b) selection: schema unchanged.
  DescribeResult(
      "select(b)",
      Select(contacts, Formula::Compare(Operand::Attr("messenger"),
                                        CompareOp::kEq,
                                        Operand::Const(
                                            Value::String("email"))))
          .ValueOrDie());
  // (c) renaming: service attribute rename follows the binding pattern.
  DescribeResult("rename(c)",
                 Rename(cameras, "camera", "device").ValueOrDie());
  // (d) natural join: virtual `text` realized by a real attribute.
  auto texts_schema =
      ExtendedSchema::Create("texts", {{"name", DataType::kString},
                                       {"text", DataType::kString}})
          .ValueOrDie();
  XRelation texts(texts_schema);
  (void)texts.Insert(Tuple{Value::String("Carla"), Value::String("Ciao")});
  DescribeResult("join(d)", NaturalJoin(contacts, texts).ValueOrDie());
  // (e) assignment realizes `text`.
  DescribeResult(
      "assign(e)",
      AssignConstant(contacts, "text", Value::String("Bonjour!"))
          .ValueOrDie());
  // (f) invocation realizes checkPhoto's outputs, eliminating its pattern.
  InvokeOptions options;
  options.instant = 1;
  DescribeResult(
      "invoke(f)",
      Invoke(cameras, *cameras.schema().FindBindingPattern("checkPhoto"),
             &env.registry(), options)
          .ValueOrDie());
}

// ---------------------------------------------------------------------------
// Throughput benchmarks.
// ---------------------------------------------------------------------------

ExtendedSchemaPtr FlatSchema() {
  static ExtendedSchemaPtr schema =
      ExtendedSchema::Create(
          "flat", {{"id", DataType::kInt},
                   {"grp", DataType::kInt},
                   {"name", DataType::kString},
                   {"score", DataType::kReal},
                   {"note", DataType::kString, AttributeKind::kVirtual}})
          .ValueOrDie();
  return schema;
}

XRelation MakeFlat(std::int64_t n, std::uint64_t seed = 11) {
  XRelation relation(FlatSchema());
  Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    (void)relation.InsertUnchecked(
        Tuple{Value::Int(i), Value::Int(rng.NextInt(0, 99)),
              Value::String("n" + std::to_string(i % 1000)),
              Value::Real(rng.NextDouble() * 100.0)});
  }
  return relation;
}

void BM_Project(benchmark::State& state) {
  const XRelation input = MakeFlat(state.range(0));
  for (auto _ : state) {
    auto result = Project(input, {"id", "name"});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Project)->Arg(100)->Arg(10000)->Arg(100000);

void BM_Select(benchmark::State& state) {
  const XRelation input = MakeFlat(state.range(0));
  FormulaPtr f = Formula::Compare(Operand::Attr("score"), CompareOp::kLt,
                                  Operand::Const(Value::Real(50.0)));
  for (auto _ : state) {
    auto result = Select(input, f);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Select)->Arg(100)->Arg(10000)->Arg(100000);

void BM_NaturalJoin(benchmark::State& state) {
  const XRelation left = MakeFlat(state.range(0), 11);
  auto right_schema =
      ExtendedSchema::Create("groups", {{"grp", DataType::kInt},
                                        {"label", DataType::kString}})
          .ValueOrDie();
  XRelation right(right_schema);
  for (int g = 0; g < 100; ++g) {
    (void)right.InsertUnchecked(
        Tuple{Value::Int(g), Value::String("g" + std::to_string(g))});
  }
  for (auto _ : state) {
    auto result = NaturalJoin(left, right);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaturalJoin)->Arg(100)->Arg(10000)->Arg(100000);

void BM_Assign(benchmark::State& state) {
  const XRelation input = MakeFlat(state.range(0));
  for (auto _ : state) {
    auto result = AssignConstant(input, "note", Value::String("x"));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Assign)->Arg(100)->Arg(10000)->Arg(100000);

void BM_Union(benchmark::State& state) {
  const XRelation a = MakeFlat(state.range(0), 11);
  const XRelation b = MakeFlat(state.range(0), 22);
  for (auto _ : state) {
    auto result = Union(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Union)->Arg(100)->Arg(10000);

void BM_Invoke(benchmark::State& state) {
  // One synthetic sensor per tuple; measures the full invocation path
  // including registry lookup and per-instant memoization.
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const XRelation& sensors =
      *scenario->env().GetRelation("sensors").ValueOrDie();
  const BindingPattern& bp = sensors.schema().binding_patterns()[0];
  Timestamp instant = 0;
  for (auto _ : state) {
    InvokeOptions invoke_options;
    invoke_options.instant = ++instant;  // Fresh instant: no memo hits.
    auto result =
        Invoke(sensors, bp, &scenario->env().registry(), invoke_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_Invoke)->Arg(16)->Arg(256)->Arg(4096);

void BM_Aggregate(benchmark::State& state) {
  const XRelation input = MakeFlat(state.range(0));
  for (auto _ : state) {
    auto result = Aggregate(input, {"grp"},
                            {{AggregateFn::kAvg, "score", "mean"},
                             {AggregateFn::kCount, "", "n"}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aggregate)->Arg(100)->Arg(10000)->Arg(100000);

void BM_InvokeMemoized(benchmark::State& state) {
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const XRelation& sensors =
      *scenario->env().GetRelation("sensors").ValueOrDie();
  const BindingPattern& bp = sensors.schema().binding_patterns()[0];
  InvokeOptions invoke_options;
  invoke_options.instant = 1;  // Same instant: memoized after 1st round.
  for (auto _ : state) {
    auto result =
        Invoke(sensors, bp, &scenario->env().registry(), invoke_options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_InvokeMemoized)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceTable3(); });
}
