// Reproduces Table 1 (prototype and service declarations) and measures
// the Serena DDL front end: parse + catalog-apply throughput as the
// declaration count grows.

#include "bench_util.h"
#include "common/string_util.h"
#include "ddl/catalog.h"

namespace serena {
namespace {

constexpr const char* kTable1 = R"(
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
PROTOTYPE getTemperature( ) : (temperature REAL );
SERVICE email IMPLEMENTS sendMessage;
SERVICE jabber IMPLEMENTS sendMessage;
SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
SERVICE sensor01 IMPLEMENTS getTemperature;
SERVICE sensor06 IMPLEMENTS getTemperature;
SERVICE sensor07 IMPLEMENTS getTemperature;
SERVICE sensor22 IMPLEMENTS getTemperature;
)";

void ReproduceTable1() {
  bench::PrintHeader("Table 1",
                     "Prototypes and services of the temperature "
                     "surveillance scenario, parsed and re-rendered from "
                     "the library's catalog.");
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  const Status status = catalog.Execute(kTable1);
  std::printf("catalog load: %s\n", status.ToString().c_str());

  bench::PrintSection("prototypes (as declared)");
  for (const std::string& name : env.PrototypeNames()) {
    std::printf("%s;\n",
                env.GetPrototype(name).ValueOrDie()->ToString().c_str());
  }
  bench::PrintSection("services (ref -> implemented prototypes)");
  for (const std::string& ref : env.registry().ServiceRefs()) {
    auto service = env.registry().Lookup(ref).ValueOrDie();
    std::vector<std::string> protos;
    for (const auto& p : service->prototypes()) protos.push_back(p->name());
    std::printf("SERVICE %s IMPLEMENTS %s;\n", ref.c_str(),
                Join(protos, ", ").c_str());
  }
  std::printf("\nservices implementing getTemperature: %zu (paper: 4)\n",
              env.registry().ServicesImplementing("getTemperature").size());

  bench::RecordRepro("catalog_load_ok", status.ok() ? 1 : 0, "bool");
  bench::RecordRepro("prototypes_declared",
                     static_cast<double>(env.PrototypeNames().size()),
                     "prototypes");
  bench::RecordRepro(
      "services_declared",
      static_cast<double>(env.registry().ServiceRefs().size()), "services");
  bench::RecordRepro(
      "temperature_services",
      static_cast<double>(
          env.registry().ServicesImplementing("getTemperature").size()),
      "services");
}

/// Synthesizes a DDL script with `n` prototype+service pairs.
std::string SyntheticDdl(int n) {
  std::string ddl;
  for (int i = 0; i < n; ++i) {
    ddl += StringFormat(
        "PROTOTYPE proto%04d(a%04d STRING) : (r%04d REAL);\n", i, i, i);
    ddl += StringFormat("SERVICE svc%04d IMPLEMENTS proto%04d;\n", i, i);
  }
  return ddl;
}

void BM_ParseDdl(benchmark::State& state) {
  const std::string ddl = SyntheticDdl(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto statements = ParseDdl(ddl);
    benchmark::DoNotOptimize(statements);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ParseDdl)->Arg(10)->Arg(100)->Arg(1000);

void BM_CatalogApply(benchmark::State& state) {
  const std::string ddl = SyntheticDdl(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Environment env;
    StreamStore streams;
    SerenaCatalog catalog(&env, &streams);
    const Status status = catalog.Execute(ddl);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_CatalogApply)->Arg(10)->Arg(100)->Arg(1000);

void BM_RegistryLookup(benchmark::State& state) {
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  (void)catalog.Execute(SyntheticDdl(static_cast<int>(state.range(0))));
  int i = 0;
  for (auto _ : state) {
    auto service = env.registry().Lookup(
        StringFormat("svc%04d", i++ % static_cast<int>(state.range(0))));
    benchmark::DoNotOptimize(service);
  }
}
BENCHMARK(BM_RegistryLookup)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceTable1(); });
}
