// Reproduces Table 4 (queries Q1, Q1', Q2, Q2' and continuous Q3, Q4)
// together with Example 6's action sets and Example 7's equivalence
// verdicts, then measures end-to-end query execution.

#include "bench_util.h"
#include "env/scenario.h"
#include "rewrite/equivalence.h"
#include "stream/executor.h"

namespace serena {
namespace {

void ReproduceTable4() {
  bench::PrintHeader("Table 4 + Examples 6/7",
                     "The canonical Serena queries, their action sets and "
                     "equivalence verdicts.");
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  Environment& env = scenario->env();
  StreamStore& streams = scenario->streams();

  bench::PrintSection("queries (Serena Algebra Language)");
  std::printf("Q1  = %s\n", scenario->Q1()->ToString().c_str());
  std::printf("Q1' = %s\n", scenario->Q1Prime()->ToString().c_str());
  std::printf("Q2  = %s\n", scenario->Q2()->ToString().c_str());
  std::printf("Q2' = %s\n", scenario->Q2Prime()->ToString().c_str());
  std::printf("Q3  = %s\n", scenario->Q3()->ToString().c_str());
  std::printf("Q4  = %s\n", scenario->Q4()->ToString().c_str());

  bench::PrintSection("action sets (Example 6)");
  QueryResult r1 = Execute(scenario->Q1(), &env, &streams, 1).ValueOrDie();
  std::printf("Actions(Q1)  = %s\n", r1.actions.ToString().c_str());
  QueryResult r1p =
      Execute(scenario->Q1Prime(), &env, &streams, 1).ValueOrDie();
  std::printf("Actions(Q1') = %s\n", r1p.actions.ToString().c_str());
  std::printf("(paper: Q1 has 2 actions, Q1' has 3 — Carla included)\n");

  bench::PrintSection("equivalence (Example 7, Def. 9)");
  std::printf("Q1 vs Q1': result %s, actions %s  =>  %s\n",
              r1.relation.SetEquals(r1p.relation) ? "same" : "differ",
              r1.actions == r1p.actions ? "same" : "differ",
              r1.actions == r1p.actions ? "EQUIVALENT" : "NOT EQUIVALENT");
  EquivalenceReport q2_report =
      CheckEquivalence(scenario->Q2(), scenario->Q2Prime(), &env, &streams,
                       2)
          .ValueOrDie();
  std::printf("Q2 vs Q2' (passive photos): %s\n",
              q2_report.ToString().c_str());

  bench::PrintSection("continuous Q3/Q4 (Example 8), 6 instants");
  ContinuousExecutor executor(&env, &streams);
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario->Q3());
  auto q4 = std::make_shared<ContinuousQuery>("q4", scenario->Q4());
  (void)executor.Register(q3);
  (void)executor.Register(q4);
  scenario->ClearOutboxes();
  executor.Run(2);
  scenario->sensors()[1]->set_bias(25.0);   // Office overheats.
  scenario->sensors()[3]->set_bias(-8.0);   // Roof freezes.
  executor.Run(4);
  std::printf("alerts sent: %zu (to Carla, office manager)\n",
              scenario->AllSentMessages().size());
  std::printf("photos taken by roof camera: %llu\n",
              static_cast<unsigned long long>(
                  scenario->cameras()[2]->photos_taken()));

  bench::RecordRepro("q1_actions", static_cast<double>(r1.actions.size()),
                     "actions");
  bench::RecordRepro("q1prime_actions",
                     static_cast<double>(r1p.actions.size()), "actions");
  bench::RecordRepro("q1_vs_q1prime_equivalent",
                     r1.actions == r1p.actions ? 1 : 0, "bool");
  bench::RecordRepro("q2_vs_q2prime_equivalent",
                     q2_report.equivalent() ? 1 : 0, "bool");
  bench::RecordRepro("continuous_alerts",
                     static_cast<double>(scenario->AllSentMessages().size()),
                     "messages");
  bench::RecordRepro(
      "roof_photos",
      static_cast<double>(scenario->cameras()[2]->photos_taken()), "photos");
}

// ---------------------------------------------------------------------------

struct ScenarioFixture {
  explicit ScenarioFixture(int scale) {
    TemperatureScenarioOptions options;
    options.extra_contacts = scale;
    options.extra_cameras = scale;
    scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  }
  std::unique_ptr<TemperatureScenario> scenario;
};

void BM_Q1_Execute(benchmark::State& state) {
  ScenarioFixture fixture(static_cast<int>(state.range(0)));
  Timestamp instant = 0;
  for (auto _ : state) {
    auto result = Execute(fixture.scenario->Q1(), &fixture.scenario->env(),
                          &fixture.scenario->streams(), ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 3));
}
BENCHMARK(BM_Q1_Execute)->Arg(0)->Arg(64)->Arg(512);

void BM_Q2_Execute(benchmark::State& state) {
  ScenarioFixture fixture(static_cast<int>(state.range(0)));
  Timestamp instant = 0;
  for (auto _ : state) {
    auto result = Execute(fixture.scenario->Q2(), &fixture.scenario->env(),
                          &fixture.scenario->streams(), ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 3));
}
BENCHMARK(BM_Q2_Execute)->Arg(0)->Arg(64)->Arg(512);

void BM_Q2Prime_Execute(benchmark::State& state) {
  ScenarioFixture fixture(static_cast<int>(state.range(0)));
  Timestamp instant = 0;
  for (auto _ : state) {
    auto result =
        Execute(fixture.scenario->Q2Prime(), &fixture.scenario->env(),
                &fixture.scenario->streams(), ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 3));
}
BENCHMARK(BM_Q2Prime_Execute)->Arg(0)->Arg(64)->Arg(512);

void BM_ContinuousQ3_Tick(benchmark::State& state) {
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  (void)executor.Register(
      std::make_shared<ContinuousQuery>("q3", scenario->Q3()));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_ContinuousQ3_Tick)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceTable4(); });
}
