#ifndef SERENA_BENCH_BENCH_UTIL_H_
#define SERENA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace serena {
namespace bench {

/// Prints the banner separating the paper-artifact reproduction section
/// (exact rows/series the paper reports) from the google-benchmark
/// timings that follow.
inline void PrintHeader(const char* artifact, const char* description) {
  std::printf(
      "==============================================================\n"
      "Reproduction: %s\n%s\n"
      "==============================================================\n",
      artifact, description);
}

inline void PrintSection(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

/// Runs the reproduction `body` then hands over to google-benchmark.
/// Usage inside main(): return RunReproAndBenchmarks(argc, argv, [] {...});
template <typename Body>
int RunReproAndBenchmarks(int argc, char** argv, Body body) {
  body();
  std::printf("\n================ microbenchmarks ================\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace serena

#endif  // SERENA_BENCH_BENCH_UTIL_H_
