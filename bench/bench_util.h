#ifndef SERENA_BENCH_BENCH_UTIL_H_
#define SERENA_BENCH_BENCH_UTIL_H_

// Harness glue for the microbenchmark binaries: the reproduction-record
// collector and the google-benchmark runner. The BENCH_*.json schema
// itself (BenchReport, ParseBenchReport, CompareBenchReports) lives in
// bench_report.h so tools and tests can consume it without linking
// google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_report.h"
#include "obs/metrics.h"

namespace serena {
namespace bench {

/// Prints the banner separating the paper-artifact reproduction section
/// (exact rows/series the paper reports) from the google-benchmark
/// timings that follow.
inline void PrintHeader(const char* artifact, const char* description) {
  std::printf(
      "==============================================================\n"
      "Reproduction: %s\n%s\n"
      "==============================================================\n",
      artifact, description);
}

inline void PrintSection(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline std::vector<ReproRecord>& ReproRecords() {
  static std::vector<ReproRecord> records;
  return records;
}

/// Registers one deterministic reproduction measurement (e.g.
/// "discovery_ticks", 2, "ticks"). Shows up under "records" in the JSON
/// emitted by `RunReproAndBenchmarks` when SERENA_BENCH_JSON_DIR is set,
/// and must reproduce bit-for-bit under `--compare`.
inline void RecordRepro(std::string name, double value, std::string unit) {
  ReproRecords().push_back(
      ReproRecord{std::move(name), value, std::move(unit)});
}

/// Registers one wall-clock measurement (e.g. "serial_invoke_ns"). Under
/// `CompareBenchReports` it tolerates noise up to the configured
/// threshold/floor instead of requiring exact equality.
inline void RecordReproTiming(std::string name, double value,
                              std::string unit) {
  ReproRecords().push_back(ReproRecord{std::move(name), value,
                                       std::move(unit), RecordMode::kTiming});
}

/// "bench/bench_fig1_pems" -> "fig1_pems".
inline std::string BenchBaseName(const char* argv0) {
  std::string_view base = argv0 != nullptr ? argv0 : "bench";
  if (const auto slash = base.rfind('/'); slash != std::string_view::npos) {
    base.remove_prefix(slash + 1);
  }
  if (base.rfind("bench_", 0) == 0) base.remove_prefix(6);
  if (base.empty()) base = "bench";
  return std::string(base);
}

/// Writes the accumulated `ReproRecords()` plus a full metrics-registry
/// dump to `path` in the shared BENCH schema.
inline void WriteBenchJson(const std::string& path, const std::string& name) {
  BenchReport report;
  report.name = name;
  report.records = ReproRecords();
  if (WriteBenchReport(path, report,
                       obs::MetricsRegistry::Global().ToJson())) {
    std::printf("\nwrote %s\n", path.c_str());
  }
}

/// Runs the reproduction `body` then hands over to google-benchmark.
/// Usage inside main(): return RunReproAndBenchmarks(argc, argv, [] {...});
///
/// When the SERENA_BENCH_JSON_DIR environment variable names a directory,
/// two machine-readable records land there:
///  - `BENCH_<name>.json` — the reproduction measurements registered via
///    `RecordRepro`/`RecordReproTiming` in the shared BENCH schema, plus
///    a full metrics-registry dump, and
///  - `BENCH_<name>.gbench.json` — google-benchmark's own JSON report
///    (unless the caller already passed --benchmark_out).
template <typename Body>
int RunReproAndBenchmarks(int argc, char** argv, Body body) {
  body();
  std::printf("\n================ microbenchmarks ================\n");

  const char* json_dir = std::getenv("SERENA_BENCH_JSON_DIR");
  const bool emit_json = json_dir != nullptr && *json_dir != '\0';
  const std::string base = BenchBaseName(argc > 0 ? argv[0] : nullptr);

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  if (emit_json) {
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
        has_out = true;
      }
    }
    if (!has_out) {
      out_flag = std::string("--benchmark_out=") + json_dir + "/BENCH_" +
                 base + ".gbench.json";
      format_flag = "--benchmark_out_format=json";
      args.push_back(out_flag.data());
      args.push_back(format_flag.data());
    }
  }

  int adjusted_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&adjusted_argc, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  if (emit_json) {
    WriteBenchJson(std::string(json_dir) + "/BENCH_" + base + ".json", base);
  }
  return 0;
}

}  // namespace bench
}  // namespace serena

#endif  // SERENA_BENCH_BENCH_UTIL_H_
