// Reproduces the §5.2 temperature surveillance experiment end-to-end and
// sweeps it: sensors x contacts scaling, alert latency, and dynamic
// discovery while the continuous query runs — the robustness/scalability
// assessment the paper defers to future work.

#include "bench_util.h"
#include "env/scenario.h"
#include "stream/executor.h"

namespace serena {
namespace {

void ReproduceExperiment() {
  bench::PrintHeader(
      "Experiment §5.2 (temperature surveillance)",
      "Sensors feed the temperatures stream; Q3 alerts area managers when "
      "readings exceed the threshold; new sensors join mid-run without "
      "restarting the query.");

  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario->Q3());
  (void)executor.Register(q3);

  bench::PrintSection("timeline");
  executor.Run(3);
  std::printf("t=1..3  nominal: %zu alerts (expected 0)\n",
              scenario->AllSentMessages().size());
  scenario->sensors()[1]->set_bias(25.0);
  executor.Run(3);
  std::printf("t=4..6  sensor06 heated: %zu alerts to office manager\n",
              scenario->AllSentMessages().size());
  (void)scenario->AddSensor("sensor99", "roof", 55.0);
  const std::size_t before = scenario->AllSentMessages().size();
  executor.Run(2);
  std::printf("t=7..8  sensor99 discovered hot on the roof: +%zu alerts to "
              "roof manager\n",
              scenario->AllSentMessages().size() - before);
  bool roof_alerted = false;
  for (const SentMessage& m : scenario->AllSentMessages()) {
    if (m.address == "francois@im.gouv.fr") roof_alerted = true;
  }
  std::printf("alert routing: francois (roof, via jabber) alerted: %s\n",
              roof_alerted ? "yes" : "no");
  // Def. 8 actions carry no timestamp, so repeated identical sends across
  // instants collapse in the accumulated *set*.
  std::printf("distinct actions accumulated by Q3 (Def. 8): %zu\n",
              q3->accumulated_actions().size());

  bench::RecordRepro("total_alerts",
                     static_cast<double>(scenario->AllSentMessages().size()),
                     "messages");
  bench::RecordRepro("roof_manager_alerted", roof_alerted ? 1 : 0, "bool");
  bench::RecordRepro("q3_distinct_actions",
                     static_cast<double>(q3->accumulated_actions().size()),
                     "actions");
}

// ---------------------------------------------------------------------------

void BM_SurveillanceTick(benchmark::State& state) {
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  options.extra_contacts = static_cast<int>(state.range(1));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  (void)executor.Register(
      std::make_shared<ContinuousQuery>("q3", scenario->Q3()));
  (void)executor.Register(
      std::make_shared<ContinuousQuery>("q4", scenario->Q4()));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_SurveillanceTick)
    ->Args({4, 0})
    ->Args({64, 0})
    ->Args({64, 64})
    ->Args({512, 64})
    ->ArgNames({"sensors", "contacts"});

void BM_AlertStorm(benchmark::State& state) {
  // Worst case: every sensor above the threshold every instant.
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  for (auto& sensor : scenario->sensors()) sensor->set_bias(40.0);
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  (void)executor.Register(
      std::make_shared<ContinuousQuery>("q3", scenario->Q3()));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_AlertStorm)->Arg(4)->Arg(64)->Arg(256);

void BM_SensorPumpOnly(benchmark::State& state) {
  // Baseline: just reading sensors into the stream, no standing queries.
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  Timestamp t = 0;
  for (auto _ : state) {
    const Status status = scenario->PumpTemperatureStream(++t);
    benchmark::DoNotOptimize(status);
    if (t % 64 == 0) {
      state.PauseTiming();
      scenario->streams()
          .GetStream(TemperatureScenario::kTemperatures)
          .ValueOrDie()
          ->PruneBefore(t - 1);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_SensorPumpOnly)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceExperiment(); });
}
