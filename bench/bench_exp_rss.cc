// Reproduces the §5.2 RSS feed experiment: wrapper services turn feeds
// into the `news` stream; keyword-window queries track items of interest
// and forward them to contacts. Sweeps feed count, item rate and window
// length.

#include "bench_util.h"
#include "env/scenario.h"
#include "stream/executor.h"

namespace serena {
namespace {

void ReproduceExperiment() {
  bench::PrintHeader(
      "Experiment §5.2 (RSS feeds)",
      "Feeds lemonde/lefigaro/cnn wrapped as stream sources; continuous "
      "keyword query with a window; matches forwarded as messages, each "
      "item exactly once (§4.2 delta invocation).");

  RssScenarioOptions options;
  options.items_per_instant = 2;
  options.keyword_rate = 0.15;
  auto scenario = RssScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource([&](Timestamp t) { return scenario->PumpNews(t); });

  auto keyword = std::make_shared<ContinuousQuery>(
      "obama", scenario->KeywordQuery("Obama", 10));
  std::size_t window_size = 0;
  keyword->set_sink([&](Timestamp, const XRelation& r) {
    window_size = r.size();
  });
  (void)executor.Register(keyword);
  auto forward = std::make_shared<ContinuousQuery>(
      "forward", scenario->ForwardQuery("Obama", 10, "Carla"));
  (void)executor.Register(forward);

  executor.Run(25);
  const XDRelation* news =
      scenario->streams().GetStream("news").ValueOrDie();
  std::printf("items currently retained in `news`: %zu\n", news->size());
  std::printf("keyword matches in the final 10-instant window: %zu\n",
              window_size);
  std::printf("items forwarded to Carla (distinct, exactly-once): %zu\n",
              scenario->email()->outbox().size());
  std::printf("forward-query action set size: %zu\n",
              forward->accumulated_actions().size());
  std::printf("(paper shape: matches appear as news arrive and expire as "
              "the window slides; each is sent once)\n");

  bench::RecordRepro("news_retained",
                     static_cast<double>(news->size()), "tuples");
  bench::RecordRepro("final_window_matches",
                     static_cast<double>(window_size), "tuples");
  bench::RecordRepro(
      "items_forwarded",
      static_cast<double>(scenario->email()->outbox().size()), "messages");
  bench::RecordRepro(
      "forward_action_set",
      static_cast<double>(forward->accumulated_actions().size()), "actions");
}

// ---------------------------------------------------------------------------

void BM_RssTick(benchmark::State& state) {
  RssScenarioOptions options;
  options.extra_feeds = static_cast<int>(state.range(0));
  options.items_per_instant = static_cast<int>(state.range(1));
  auto scenario = RssScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource([&](Timestamp t) { return scenario->PumpNews(t); });
  (void)executor.Register(std::make_shared<ContinuousQuery>(
      "kw", scenario->KeywordQuery("Obama", 10)));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 3) *
                          state.range(1));
}
BENCHMARK(BM_RssTick)
    ->Args({0, 2})
    ->Args({16, 2})
    ->Args({16, 16})
    ->Args({128, 4})
    ->ArgNames({"extra_feeds", "items"});

void BM_WindowLength(benchmark::State& state) {
  // Longer windows mean more in-window tuples per evaluation.
  RssScenarioOptions options;
  options.items_per_instant = 8;
  auto scenario = RssScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource([&](Timestamp t) { return scenario->PumpNews(t); });
  (void)executor.Register(std::make_shared<ContinuousQuery>(
      "kw", scenario->KeywordQuery("Obama",
                                   static_cast<Timestamp>(state.range(0)))));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * 8 * 3);
}
BENCHMARK(BM_WindowLength)->Arg(1)->Arg(10)->Arg(100);

void BM_ForwardQueryTick(benchmark::State& state) {
  RssScenarioOptions options;
  options.items_per_instant = static_cast<int>(state.range(0));
  options.keyword_rate = 0.2;
  auto scenario = RssScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource([&](Timestamp t) { return scenario->PumpNews(t); });
  (void)executor.Register(std::make_shared<ContinuousQuery>(
      "fw", scenario->ForwardQuery("Obama", 10, "Carla")));
  for (auto _ : state) {
    executor.Tick();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_ForwardQueryTick)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceExperiment(); });
}
