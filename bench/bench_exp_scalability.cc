// The scalability study the paper defers to future work (§5.2/§7, the
// OPTIMACS "hybrid query" benchmark): how do service-oriented queries
// scale with the number of services and tuples, and how much does logical
// optimization (Table 5 pushdowns) buy as the environment grows?
//
// Also serves as the ablation harness for DESIGN.md's design choices:
// per-instant invocation memoization on/off equivalents, optimized vs
// naive plans, and hash-join vs nested evaluation shape via cardinality.

#include "bench_util.h"
#include "common/string_util.h"
#include "env/scenario.h"
#include "rewrite/rewriter.h"

namespace serena {
namespace {

/// Hybrid query: join data (surveillance) with service-backed relations
/// (sensors realized through getTemperature), filter, and message — the
/// data+stream+service mix the paper calls a "hybrid query".
///
/// The naive formulation filters by location only *after* invoking
/// getTemperature on every sensor; since getTemperature is passive, the
/// Table 5 rules may push the location filter below the invocation, so
/// only office sensors are ever contacted. The final sendMessage is
/// active: nothing moves across it (§3.3).
PlanPtr HybridQuery() {
  PlanPtr readings = Invoke(Scan("sensors"), "getTemperature");
  PlanPtr hot = Select(
      readings,
      Formula::And(
          Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                           Operand::Const(Value::Real(30.0))),
          Formula::Compare(Operand::Attr("location"), CompareOp::kEq,
                           Operand::Const(Value::String("office")))));
  PlanPtr managed = Join(hot, Scan("surveillance"));
  return Invoke(Assign(Join(managed, Scan("contacts")), "text",
                       Value::String("Hot!")),
                "sendMessage");
}

void ReproduceSweep() {
  bench::PrintHeader(
      "Scalability study (paper future work, §5.2/§7)",
      "Hybrid data+service queries as the environment grows; naive vs "
      "optimized plans. Numbers are per one-shot evaluation.");

  std::printf("%-10s %-10s %-14s %-14s %-12s\n", "sensors", "contacts",
              "invocations", "opt-invk", "result");
  for (const auto& [sensors, contacts] :
       {std::pair{16, 16}, {64, 64}, {256, 64}, {1024, 64}}) {
    TemperatureScenarioOptions options;
    options.extra_sensors = sensors;
    options.extra_contacts = contacts;
    options.extra_areas = 13;  // Office sensors become a small fraction.
    auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
    // Heat everything: the result tracks office sensors x office contacts.
    for (const auto& sensor : scenario->sensors()) {
      sensor->set_bias(20.0);
    }
    Rewriter rewriter(&scenario->env(), &scenario->streams());
    PlanPtr naive = HybridQuery();
    PlanPtr optimized = rewriter.Optimize(naive).ValueOrDie();

    scenario->env().registry().ResetStats();
    auto r1 = Execute(naive, &scenario->env(), &scenario->streams(), 1);
    const auto naive_inv =
        scenario->env().registry().stats().physical_invocations;
    scenario->env().registry().ResetStats();
    auto r2 =
        Execute(optimized, &scenario->env(), &scenario->streams(), 2);
    const auto opt_inv =
        scenario->env().registry().stats().physical_invocations;
    std::printf("%-10d %-10d %-14llu %-14llu %zu tuples\n", sensors + 4,
                contacts + 3, static_cast<unsigned long long>(naive_inv),
                static_cast<unsigned long long>(opt_inv),
                r2.ok() ? r2->relation.size() : 0);
    (void)r1;
    // Per-population invocation counts are the paper's cost argument in
    // miniature: exact records, so --compare catches optimizer drift.
    bench::RecordRepro(
        StringFormat("naive_invocations_s%d", sensors + 4),
        static_cast<double>(naive_inv), "invocations");
    bench::RecordRepro(StringFormat("opt_invocations_s%d", sensors + 4),
                       static_cast<double>(opt_inv), "invocations");
    bench::RecordRepro(StringFormat("result_tuples_s%d", sensors + 4),
                       r2.ok() ? static_cast<double>(r2->relation.size()) : 0,
                       "tuples");
  }
  std::printf(
      "(shape check: naive invocations grow with the full sensor "
      "population; the optimizer pushes the location filter below the "
      "passive getTemperature so optimized invocations track only office "
      "sensors — while the active sendMessage stays untouched, §3.3)\n");
}

// ---------------------------------------------------------------------------

void BM_HybridNaive(benchmark::State& state) {
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  options.extra_contacts = 32;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const PlanPtr plan = HybridQuery();
  Timestamp instant = 0;
  for (auto _ : state) {
    auto result = Execute(plan, &scenario->env(), &scenario->streams(),
                          ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_HybridNaive)->Arg(16)->Arg(128)->Arg(1024);

void BM_HybridOptimized(benchmark::State& state) {
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  options.extra_contacts = 32;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  Rewriter rewriter(&scenario->env(), &scenario->streams());
  const PlanPtr plan = rewriter.Optimize(HybridQuery()).ValueOrDie();
  Timestamp instant = 0;
  for (auto _ : state) {
    auto result = Execute(plan, &scenario->env(), &scenario->streams(),
                          ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_HybridOptimized)->Arg(16)->Arg(128)->Arg(1024);

void BM_MemoizationAblation(benchmark::State& state) {
  // Design choice #2 (DESIGN.md): per-instant memoization. Re-evaluating
  // the same query at ONE instant (memo hits) vs fresh instants (misses).
  const bool same_instant = state.range(1) == 1;
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const PlanPtr plan = Invoke(Scan("sensors"), "getTemperature");
  Timestamp instant = 1;
  for (auto _ : state) {
    auto result = Execute(plan, &scenario->env(), &scenario->streams(),
                          same_instant ? 1 : ++instant);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 4));
}
BENCHMARK(BM_MemoizationAblation)
    ->Args({256, 0})
    ->Args({256, 1})
    ->ArgNames({"sensors", "memo"});

void BM_JoinScaling(benchmark::State& state) {
  // Join cardinality growth: sensors x surveillance (per-location).
  TemperatureScenarioOptions options;
  options.extra_sensors = static_cast<int>(state.range(0));
  options.extra_contacts = static_cast<int>(state.range(0));
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const PlanPtr plan = Join(Scan("sensors"), Scan("surveillance"));
  for (auto _ : state) {
    auto result =
        Execute(plan, &scenario->env(), &scenario->streams(), 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinScaling)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceSweep(); });
}
