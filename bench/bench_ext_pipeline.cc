// Extension benchmarks (beyond the paper's artifacts): derived-stream
// pipelines, row-based windows, streaming binding patterns and lease-based
// discovery — the features DESIGN.md row 12 documents. Demonstrates the
// full sense -> derive -> decide pipeline and measures its steady-state
// cost.

#include "bench_util.h"
#include "env/sim_services.h"
#include "pems/monitor.h"
#include "pems/pems.h"

namespace serena {
namespace {

/// Builds a PEMS with `sensors` streaming power meters feeding a derived
/// per-room consumption stream and a standing aggregate on top.
Result<std::unique_ptr<Pems>> BuildPipeline(int sensors) {
  Pems::Options options;
  options.network.min_latency = 0;
  options.network.max_latency = 0;
  options.announcement_ttl = 8;
  options.reannounce_interval = 2;
  SERENA_ASSIGN_OR_RETURN(std::unique_ptr<Pems> pems,
                          Pems::Create(options));
  SERENA_RETURN_NOT_OK(pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL) STREAMING;"
      "EXTENDED RELATION sensors (sensor SERVICE, room STRING, "
      "temperature REAL VIRTUAL) USING BINDING PATTERNS ("
      "getTemperature[sensor]() : (temperature));"));
  for (int i = 0; i < sensors; ++i) {
    const std::string ref = "s" + std::to_string(i);
    SERENA_RETURN_NOT_OK(
        pems->Deploy("node" + std::to_string(i % 8),
                     std::make_shared<TemperatureSensorService>(
                         ref, 18.0 + i % 7, i)));
    SERENA_RETURN_NOT_OK(
        pems->tables()
            .InsertTuple("sensors",
                         Tuple{Value::String(ref),
                               Value::String("room" +
                                             std::to_string(i % 4))})
            .status());
  }
  pems->Run(2);  // Discovery.
  // Stage 1: per-room means into a derived stream.
  SERENA_RETURN_NOT_OK(pems->queries().RegisterContinuousInto(
      "means",
      "aggregate[room; avg(temperature) -> mean](invoke[getTemperature]("
      "sensors))",
      "room_means"));
  // Stage 2: a row window over the derived stream.
  SERENA_RETURN_NOT_OK(pems->queries().RegisterContinuous(
      "trend", "aggregate[room; max(mean) -> peak](window[rows "
               "16](room_means))"));
  return pems;
}

void ReproducePipeline() {
  bench::PrintHeader(
      "Extensions (DESIGN.md row 12)",
      "Streaming binding patterns + derived streams + row windows + "
      "lease-based discovery, composed into one running pipeline.");
  auto pems = BuildPipeline(8).MoveValueOrDie();
  pems->Run(6);
  bench::PrintSection("pipeline state after 6 instants");
  std::printf("%s", SnapshotMetrics(*pems).ToString().c_str());
  auto peaks = pems->queries().ExecuteOneShot(
      "aggregate[room; max(mean) -> peak](window[rows 16](room_means))");
  if (peaks.ok()) {
    std::printf("\nper-room peak of windowed means:\n%s",
                peaks->relation.ToTableString().c_str());
  }

  const PemsMetrics snapshot = SnapshotMetrics(*pems);
  bench::RecordRepro("pipeline_rooms_with_peaks",
                     peaks.ok() ? static_cast<double>(peaks->relation.size())
                                : 0,
                     "tuples");
  bench::RecordRepro(
      "pipeline_logical_invocations",
      static_cast<double>(snapshot.invocations.logical_invocations),
      "invocations");
  bench::RecordRepro("pipeline_memo_hits",
                     static_cast<double>(snapshot.invocations.memo_hits),
                     "invocations");
}

void BM_PipelineTick(benchmark::State& state) {
  auto pems = BuildPipeline(static_cast<int>(state.range(0)))
                  .MoveValueOrDie();
  for (auto _ : state) {
    pems->Tick();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineTick)->Arg(8)->Arg(64)->Arg(256);

void BM_RowWindowVsTimeWindow(benchmark::State& state) {
  const bool rows = state.range(1) == 1;
  auto pems = BuildPipeline(static_cast<int>(state.range(0)))
                  .MoveValueOrDie();
  (void)pems->queries().RegisterContinuous(
      "probe", rows ? "window[rows 32](room_means)"
                    : "window[8](room_means)");
  for (auto _ : state) {
    pems->Tick();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowWindowVsTimeWindow)
    ->Args({32, 0})
    ->Args({32, 1})
    ->ArgNames({"sensors", "rows"});

void BM_LeaseChurn(benchmark::State& state) {
  // Devices appear and crash every instant; measures discovery + expiry
  // overhead under churn.
  Pems::Options options;
  options.network.min_latency = 0;
  options.network.max_latency = 0;
  options.announcement_ttl = 2;
  options.reannounce_interval = 1;
  auto pems = Pems::Create(options).MoveValueOrDie();
  (void)pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL);");
  int counter = 0;
  for (auto _ : state) {
    const std::string node = "churn" + std::to_string(counter++);
    auto erm = pems->CreateLocalErm(node);
    if (erm.ok()) {
      (void)(*erm)->Host(pems->env().clock().now(),
                         std::make_shared<TemperatureSensorService>(
                             "svc" + std::to_string(counter), 20.0,
                             counter));
    }
    pems->Tick();
    (void)pems->CrashNode(node);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaseChurn);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproducePipeline(); });
}
