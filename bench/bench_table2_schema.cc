// Reproduces Table 2 (the X-Relation declarations `contacts` and
// `cameras`) and measures extended-schema machinery: schema construction
// with Def. 2 validation, δ_R coordinate lookup, and tuple validation.

#include "bench_util.h"
#include "common/string_util.h"
#include "ddl/catalog.h"
#include "env/prototypes.h"

namespace serena {
namespace {

constexpr const char* kTable2Ddl = R"(
PROTOTYPE sendMessage( address STRING, text STRING ) : (sent BOOLEAN) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : (quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : (photo BLOB );
EXTENDED RELATION contacts (
  name STRING, address STRING, text STRING VIRTUAL,
  messenger SERVICE, sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS (
  sendMessage[messenger] ( address, text ) : ( sent )
);
EXTENDED RELATION cameras (
  camera SERVICE, area STRING, quality INTEGER VIRTUAL,
  delay REAL VIRTUAL, photo BLOB VIRTUAL
) USING BINDING PATTERNS (
  checkPhoto[camera] ( area ) : ( quality, delay ),
  takePhoto[camera] ( area, quality ) : ( photo )
);
)";

void ReproduceTable2() {
  bench::PrintHeader("Table 2",
                     "X-Relations of the relational pervasive environment, "
                     "re-rendered from parsed schemas (virtual attributes "
                     "and binding patterns preserved).");
  Environment env;
  StreamStore streams;
  SerenaCatalog catalog(&env, &streams);
  const Status status = catalog.Execute(kTable2Ddl);
  std::printf("catalog load: %s\n\n", status.ToString().c_str());
  for (const char* name : {"contacts", "cameras"}) {
    const XRelation* relation = env.GetRelation(name).ValueOrDie();
    std::printf("%s;\n\n", relation->schema().ToString().c_str());
  }
  const XRelation* contacts = env.GetRelation("contacts").ValueOrDie();
  std::printf("realSchema(contacts)    = {%s}\n",
              Join(contacts->schema().RealNames(), ", ").c_str());
  std::printf("virtualSchema(contacts) = {%s}  (paper: {text, sent})\n",
              Join(contacts->schema().VirtualNames(), ", ").c_str());
  std::printf(
      "delta_Contact(messenger): schema position 4 -> tuple coordinate %zu "
      "(paper Example 4: 3rd coordinate)\n",
      *contacts->schema().CoordinateOf("messenger") + 1);

  bench::RecordRepro("catalog_load_ok", status.ok() ? 1 : 0, "bool");
  bench::RecordRepro(
      "contacts_real_attrs",
      static_cast<double>(contacts->schema().RealNames().size()), "attrs");
  bench::RecordRepro(
      "contacts_virtual_attrs",
      static_cast<double>(contacts->schema().VirtualNames().size()), "attrs");
  bench::RecordRepro(
      "messenger_coordinate",
      static_cast<double>(*contacts->schema().CoordinateOf("messenger") + 1),
      "coordinate");
}

/// Schema with `n` attributes, half virtual.
std::vector<Attribute> WideAttributes(int n) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < n; ++i) {
    attrs.emplace_back(StringFormat("a%04d", i), DataType::kInt,
                       i % 2 == 0 ? AttributeKind::kReal
                                  : AttributeKind::kVirtual);
  }
  return attrs;
}

void BM_SchemaCreate(benchmark::State& state) {
  const auto attrs = WideAttributes(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto schema = ExtendedSchema::Create("wide", attrs);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_SchemaCreate)->Arg(8)->Arg(64)->Arg(512);

void BM_CoordinateLookup(benchmark::State& state) {
  auto schema =
      ExtendedSchema::Create("wide",
                             WideAttributes(static_cast<int>(state.range(0))))
          .ValueOrDie();
  const std::string last = StringFormat(
      "a%04d", static_cast<int>(state.range(0)) - 2);
  for (auto _ : state) {
    auto coord = schema->CoordinateOf(last);
    benchmark::DoNotOptimize(coord);
  }
}
BENCHMARK(BM_CoordinateLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_TupleValidation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto schema = ExtendedSchema::Create("wide", WideAttributes(n))
                    .ValueOrDie();
  std::vector<Value> values;
  for (std::size_t i = 0; i < schema->real_arity(); ++i) {
    values.push_back(Value::Int(static_cast<std::int64_t>(i)));
  }
  const Tuple tuple(values);
  for (auto _ : state) {
    const Status status = schema->ValidateTuple(tuple);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * schema->real_arity());
}
BENCHMARK(BM_TupleValidation)->Arg(8)->Arg(64)->Arg(512);

void BM_XRelationInsert(benchmark::State& state) {
  auto schema =
      ExtendedSchema::Create("r", {{"id", DataType::kInt},
                                   {"payload", DataType::kString}})
          .ValueOrDie();
  for (auto _ : state) {
    XRelation relation(schema);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      (void)relation.InsertUnchecked(
          Tuple{Value::Int(i), Value::String("p" + std::to_string(i))});
    }
    benchmark::DoNotOptimize(relation);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XRelationInsert)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceTable2(); });
}
