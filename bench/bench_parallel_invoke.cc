// Parallel invocation engine benchmark: the same β_bp invocation batch
// executed serially and on a worker pool. Service latency dominates real
// pervasive environments (the paper's sensors answer over the network in
// milliseconds), so concurrent dispatch of independent invocations is
// where the engine wins wall-clock time. The reproduction checks the
// headline guarantee too: the parallel output is byte-identical to the
// serial one (input order, failed-tuple order, stats).

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "algebra/operators.h"
#include "common/thread_pool.h"
#include "service/lambda_service.h"
#include "service/service_registry.h"

namespace serena {
namespace {

RelationSchema Schema(std::vector<Attribute> attrs) {
  return RelationSchema::Create(std::move(attrs)).ValueOrDie();
}

PrototypePtr ProbePrototype() {
  static PrototypePtr proto =
      Prototype::Create("probe", Schema({{"x", DataType::kInt}}),
                        Schema({{"y", DataType::kInt}}),
                        /*active=*/false)
          .ValueOrDie();
  return proto;
}

/// `n` services, each answering y = x*10+i after `latency` (a simulated
/// network round trip to a remote sensor).
void RegisterProbeServices(ServiceRegistry* registry, int n,
                           std::chrono::microseconds latency) {
  for (int i = 0; i < n; ++i) {
    auto service =
        std::make_shared<LambdaService>("svc" + std::to_string(i));
    service->AddMethod(
        ProbePrototype(),
        [i, latency](const Tuple& input,
                     Timestamp) -> Result<std::vector<Tuple>> {
          if (latency.count() > 0) std::this_thread::sleep_for(latency);
          return std::vector<Tuple>{
              Tuple{Value::Int(input[0].int_value() * 10 + i)}};
        });
    (void)registry->Register(std::move(service));
  }
}

XRelation ProbeRelation(int rows, int services) {
  auto schema =
      ExtendedSchema::Create(
          "probes",
          {{"svc", DataType::kService},
           {"x", DataType::kInt},
           {"y", DataType::kInt, AttributeKind::kVirtual}},
          {BindingPattern(ProbePrototype(), "svc")})
          .ValueOrDie();
  XRelation r(schema);
  for (int i = 0; i < rows; ++i) {
    (void)r.Insert(
        Tuple{Value::String("svc" + std::to_string(i % services)),
              Value::Int(i)});
  }
  return r;
}

constexpr int kServices = 16;
constexpr int kRows = 32;

/// Invokes the whole relation once at instant `instant` on `pool` and
/// returns (elapsed ns, output table).
std::pair<double, std::string> TimeInvoke(const XRelation& input,
                                          ServiceRegistry* registry,
                                          ThreadPool* pool,
                                          Timestamp instant) {
  InvokeOptions options;
  options.instant = instant;
  options.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  XRelation out =
      Invoke(input, input.schema().binding_patterns()[0], registry, options)
          .ValueOrDie();
  const auto end = std::chrono::steady_clock::now();
  return {static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   start)
                  .count()),
          out.ToTableString()};
}

void ReproduceParallelInvoke() {
  bench::PrintHeader(
      "parallel_invoke",
      "One invocation batch (32 tuples over 16 services, 1 ms simulated "
      "service latency) dispatched serially vs. on a 4-thread pool; the "
      "pooled run must produce a byte-identical X-Relation.");

  const XRelation input = ProbeRelation(kRows, kServices);
  const auto latency = std::chrono::milliseconds(1);

  // Fresh registries so the per-instant memo cannot hide physical calls.
  ServiceRegistry serial_registry;
  RegisterProbeServices(&serial_registry, kServices, latency);
  ThreadPool serial_pool(0);
  const auto [serial_ns, serial_table] =
      TimeInvoke(input, &serial_registry, &serial_pool, 1);

  ServiceRegistry parallel_registry;
  RegisterProbeServices(&parallel_registry, kServices, latency);
  ThreadPool pool(4);
  const auto [parallel_ns, parallel_table] =
      TimeInvoke(input, &parallel_registry, &pool, 1);

  const bool identical = parallel_table == serial_table;
  const double speedup = parallel_ns > 0 ? serial_ns / parallel_ns : 0;
  std::printf("serial   : %10.3f ms\n", serial_ns / 1e6);
  std::printf("parallel : %10.3f ms   (4 worker threads)\n",
              parallel_ns / 1e6);
  std::printf("speedup  : %10.2fx\n", speedup);
  std::printf("output   : %s\n",
              identical ? "byte-identical to serial" : "MISMATCH");

  bench::RecordRepro("serial_invoke_ns", serial_ns, "ns");
  bench::RecordRepro("parallel_invoke_ns", parallel_ns, "ns");
  bench::RecordRepro("speedup", speedup, "x");
  bench::RecordRepro("outputs_identical", identical ? 1 : 0, "bool");
}

// ---------------------------------------------------------------------------
// Throughput benchmarks: batch invocation across pool sizes.
// ---------------------------------------------------------------------------

void BM_InvokeBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto latency = std::chrono::microseconds(state.range(1));
  ServiceRegistry registry;
  RegisterProbeServices(&registry, kServices, latency);
  const XRelation input = ProbeRelation(kRows, kServices);
  ThreadPool pool(threads);
  InvokeOptions options;
  options.pool = &pool;
  Timestamp instant = 0;  // Fresh instant per iteration: no memo hits.
  for (auto _ : state) {
    options.instant = ++instant;
    benchmark::DoNotOptimize(
        Invoke(input, input.schema().binding_patterns()[0], &registry,
               options)
            .ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_InvokeBatch)
    ->ArgNames({"threads", "latency_us"})
    ->Args({0, 0})
    ->Args({4, 0})
    ->Args({0, 1000})
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceParallelInvoke(); });
}
