// Parallel invocation engine benchmark: the same β_bp invocation batch
// executed serially and on a worker pool. Service latency dominates real
// pervasive environments (the paper's sensors answer over the network in
// milliseconds), so concurrent dispatch of independent invocations is
// where the engine wins wall-clock time. The reproduction checks the
// headline guarantee too: the parallel output is byte-identical to the
// serial one (input order, failed-tuple order, stats).

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "algebra/operators.h"
#include "common/thread_pool.h"
#include "ddl/algebra_parser.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "service/lambda_service.h"
#include "service/service_registry.h"
#include "stream/continuous_query.h"
#include "stream/executor.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {
namespace {

RelationSchema Schema(std::vector<Attribute> attrs) {
  return RelationSchema::Create(std::move(attrs)).ValueOrDie();
}

PrototypePtr ProbePrototype() {
  static PrototypePtr proto =
      Prototype::Create("probe", Schema({{"x", DataType::kInt}}),
                        Schema({{"y", DataType::kInt}}),
                        /*active=*/false)
          .ValueOrDie();
  return proto;
}

/// `n` services, each answering y = x*10+i after `latency` (a simulated
/// network round trip to a remote sensor).
void RegisterProbeServices(ServiceRegistry* registry, int n,
                           std::chrono::microseconds latency) {
  for (int i = 0; i < n; ++i) {
    auto service =
        std::make_shared<LambdaService>("svc" + std::to_string(i));
    service->AddMethod(
        ProbePrototype(),
        [i, latency](const Tuple& input,
                     Timestamp) -> Result<std::vector<Tuple>> {
          if (latency.count() > 0) std::this_thread::sleep_for(latency);
          return std::vector<Tuple>{
              Tuple{Value::Int(input[0].int_value() * 10 + i)}};
        });
    (void)registry->Register(std::move(service));
  }
}

XRelation ProbeRelation(int rows, int services) {
  auto schema =
      ExtendedSchema::Create(
          "probes",
          {{"svc", DataType::kService},
           {"x", DataType::kInt},
           {"y", DataType::kInt, AttributeKind::kVirtual}},
          {BindingPattern(ProbePrototype(), "svc")})
          .ValueOrDie();
  XRelation r(schema);
  for (int i = 0; i < rows; ++i) {
    (void)r.Insert(
        Tuple{Value::String("svc" + std::to_string(i % services)),
              Value::Int(i)});
  }
  return r;
}

constexpr int kServices = 16;
constexpr int kRows = 32;

/// Invokes the whole relation once at instant `instant` on `pool` and
/// returns (elapsed ns, output table).
std::pair<double, std::string> TimeInvoke(const XRelation& input,
                                          ServiceRegistry* registry,
                                          ThreadPool* pool,
                                          Timestamp instant) {
  InvokeOptions options;
  options.instant = instant;
  options.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  XRelation out =
      Invoke(input, input.schema().binding_patterns()[0], registry, options)
          .ValueOrDie();
  const auto end = std::chrono::steady_clock::now();
  return {static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   start)
                  .count()),
          out.ToTableString()};
}

void ReproduceParallelInvoke() {
  bench::PrintHeader(
      "parallel_invoke",
      "One invocation batch (32 tuples over 16 services, 1 ms simulated "
      "service latency) dispatched serially vs. on a 4-thread pool; the "
      "pooled run must produce a byte-identical X-Relation.");

  const XRelation input = ProbeRelation(kRows, kServices);
  const auto latency = std::chrono::milliseconds(1);

  // Fresh registries so the per-instant memo cannot hide physical calls.
  ServiceRegistry serial_registry;
  RegisterProbeServices(&serial_registry, kServices, latency);
  ThreadPool serial_pool(0);
  const auto [serial_ns, serial_table] =
      TimeInvoke(input, &serial_registry, &serial_pool, 1);

  ServiceRegistry parallel_registry;
  RegisterProbeServices(&parallel_registry, kServices, latency);
  ThreadPool pool(4);
  const auto [parallel_ns, parallel_table] =
      TimeInvoke(input, &parallel_registry, &pool, 1);

  const bool identical = parallel_table == serial_table;
  const double speedup = parallel_ns > 0 ? serial_ns / parallel_ns : 0;
  std::printf("serial   : %10.3f ms\n", serial_ns / 1e6);
  std::printf("parallel : %10.3f ms   (4 worker threads)\n",
              parallel_ns / 1e6);
  std::printf("speedup  : %10.2fx\n", speedup);
  std::printf("output   : %s\n",
              identical ? "byte-identical to serial" : "MISMATCH");

  // Wall-clock figures go in as timing records: --compare tolerates
  // noise on them, unlike the exact output-equality bit below.
  bench::RecordReproTiming("serial_invoke_ns", serial_ns, "ns");
  bench::RecordReproTiming("parallel_invoke_ns", parallel_ns, "ns");
  bench::RecordReproTiming("speedup", speedup, "x");
  bench::RecordRepro("outputs_identical", identical ? 1 : 0, "bool");
}

/// Causal-tracing demo: independent continuous queries over the probe
/// services (200 µs simulated service latency — slow enough that the
/// pool's workers genuinely share the step and invocation load) ticked
/// on a 4-thread pool with the trace buffer on. The resulting Chrome
/// trace (one track per pool thread, tick → step → invoke nesting held
/// together by trace/parent ids) is written next to the BENCH_*.json
/// records when SERENA_BENCH_JSON_DIR is set — open it in
/// chrome://tracing or https://ui.perfetto.dev.
void ReproduceTracedTicks() {
  bench::PrintSection("traced executor ticks (Chrome trace export)");

  obs::TraceBuffer& buffer = obs::TraceBuffer::Global();
  buffer.set_capacity(4096);
  buffer.Clear();
  buffer.set_enabled(true);

  Environment env;
  RegisterProbeServices(&env.registry(), kServices,
                        std::chrono::microseconds(200));
  if (!env.PutRelation(ProbeRelation(kRows, kServices)).ok()) return;
  StreamStore streams;
  ContinuousExecutor executor(&env, &streams);
  ThreadPool pool(4);
  executor.set_pool(&pool);
  for (int i = 0; i < 4; ++i) {
    auto plan = ParseAlgebra("invoke[probe](probes)");
    if (!plan.ok()) return;
    (void)executor.Register(std::make_shared<ContinuousQuery>(
        "probe-all-" + std::to_string(i), *plan));
  }
  executor.Run(3);
  buffer.set_enabled(false);

  std::size_t ticks = 0;
  std::size_t steps = 0;
  std::size_t invokes = 0;
  std::set<std::uint64_t> threads;
  for (const obs::SpanRecord& span : buffer.Snapshot()) {
    if (span.name == "executor.tick") ++ticks;
    if (span.name == "executor.step") ++steps;
    if (span.name == "service.invoke" || span.name == "invoke.wait") {
      ++invokes;
    }
    threads.insert(span.thread_index);
  }
  std::printf(
      "spans    : %10zu  (%zu ticks, %zu steps, %zu invoke spans, "
      "%zu threads)\n",
      buffer.size(), ticks, steps, invokes, threads.size());
  bench::RecordRepro("trace_spans", static_cast<double>(buffer.size()),
                     "spans");
  bench::RecordRepro("trace_threads", static_cast<double>(threads.size()),
                     "threads");

  const char* json_dir = std::getenv("SERENA_BENCH_JSON_DIR");
  if (json_dir != nullptr && *json_dir != '\0') {
    const std::string path =
        std::string(json_dir) + "/TRACE_parallel_invoke.json";
    const std::string trace = obs::ExportChromeTrace(buffer);
    if (std::FILE* file = std::fopen(path.c_str(), "w")) {
      std::fputs(trace.c_str(), file);
      std::fclose(file);
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Throughput benchmarks: batch invocation across pool sizes.
// ---------------------------------------------------------------------------

void BM_InvokeBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto latency = std::chrono::microseconds(state.range(1));
  ServiceRegistry registry;
  RegisterProbeServices(&registry, kServices, latency);
  const XRelation input = ProbeRelation(kRows, kServices);
  ThreadPool pool(threads);
  InvokeOptions options;
  options.pool = &pool;
  Timestamp instant = 0;  // Fresh instant per iteration: no memo hits.
  for (auto _ : state) {
    options.instant = ++instant;
    benchmark::DoNotOptimize(
        Invoke(input, input.schema().binding_patterns()[0], &registry,
               options)
            .ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_InvokeBatch)
    ->ArgNames({"threads", "latency_us"})
    ->Args({0, 0})
    ->Args({4, 0})
    ->Args({0, 1000})
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(argc, argv, [] {
    serena::ReproduceParallelInvoke();
    serena::ReproduceTracedTicks();
  });
}
