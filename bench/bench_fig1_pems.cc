// Reproduces Figure 1 (the PEMS architecture): exercises the full stack —
// Local ERMs announcing services over the simulated network, the core ERM
// registering proxies, the Extended Table Manager executing DDL, and the
// Query Processor running discovery + continuous queries — and measures
// discovery-to-visibility latency and per-tick cost.

#include "bench_util.h"
#include "env/sim_services.h"
#include "pems/pems.h"

namespace serena {
namespace {

void ReproduceFigure1() {
  bench::PrintHeader(
      "Figure 1",
      "PEMS architecture walkthrough: devices -> Local ERMs -> network -> "
      "core ERM -> registry -> Extended Table Manager / Query Processor.");

  auto pems = Pems::Create().MoveValueOrDie();
  (void)pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL);"
      "PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) "
      "ACTIVE;");

  bench::PrintSection("deployment");
  for (int i = 0; i < 4; ++i) {
    const std::string node = "node-" + std::to_string(i);
    const std::string ref = "sensor0" + std::to_string(i);
    (void)pems->Deploy(node, std::make_shared<TemperatureSensorService>(
                                 ref, 18.0 + i, i + 1));
    std::printf("  %s hosted on Local ERM '%s'\n", ref.c_str(),
                node.c_str());
  }
  std::printf("  core ERM visible services before delivery: %zu\n",
              pems->env().registry().size());

  bench::PrintSection("discovery-to-visibility latency");
  int ticks = 0;
  while (pems->env().registry().size() < 4 && ticks < 10) {
    pems->Tick();
    ++ticks;
  }
  std::printf("  all 4 services visible after %d tick(s) "
              "(network latency 0-1 instants)\n",
              ticks);
  std::printf("  services discovered: %llu, control messages: %llu\n",
              static_cast<unsigned long long>(
                  pems->erm().services_discovered()),
              static_cast<unsigned long long>(pems->network().stats().sent));
  bench::RecordRepro("discovery_to_visibility", ticks, "ticks");
  bench::RecordRepro("services_discovered",
                     static_cast<double>(pems->erm().services_discovered()),
                     "services");
  bench::RecordRepro("control_messages",
                     static_cast<double>(pems->network().stats().sent),
                     "messages");

  bench::PrintSection("query processor over discovered services");
  (void)pems->queries().RegisterDiscoveryQuery("thermometers",
                                               "getTemperature");
  auto result = pems->queries().ExecuteOneShot(
      "invoke[getTemperature](thermometers)");
  std::printf("  invoke[getTemperature](thermometers): %zu readings, "
              "%llu invocation round trips\n",
              result->relation.size(),
              static_cast<unsigned long long>(
                  pems->network().stats().invocation_round_trips));
  bench::RecordRepro("oneshot_readings",
                     static_cast<double>(result->relation.size()), "rows");
  bench::RecordRepro(
      "invocation_round_trips",
      static_cast<double>(pems->network().stats().invocation_round_trips),
      "round_trips");
}

// ---------------------------------------------------------------------------

void BM_DiscoveryStorm(benchmark::State& state) {
  // N services announce at once; measure ticks until all visible.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto pems = Pems::Create().MoveValueOrDie();
    (void)pems->tables().ExecuteDdl(
        "PROTOTYPE getTemperature() : (temperature REAL);");
    auto erm = pems->CreateLocalErm("node").MoveValueOrDie();
    for (int i = 0; i < n; ++i) {
      (void)erm->Host(0, std::make_shared<TemperatureSensorService>(
                             "s" + std::to_string(i), 20.0, i));
    }
    state.ResumeTiming();
    while (pems->env().registry().size() < static_cast<std::size_t>(n)) {
      pems->Tick();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DiscoveryStorm)->Arg(16)->Arg(256)->Arg(1024);

void BM_PemsTick(benchmark::State& state) {
  // Steady-state tick cost with a standing query over n services.
  const int n = static_cast<int>(state.range(0));
  auto pems = Pems::Create().MoveValueOrDie();
  (void)pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL);");
  auto erm = pems->CreateLocalErm("node").MoveValueOrDie();
  for (int i = 0; i < n; ++i) {
    (void)erm->Host(0, std::make_shared<TemperatureSensorService>(
                           "s" + std::to_string(i), 20.0, i));
  }
  pems->Run(3);
  (void)pems->queries().RegisterDiscoveryQuery("thermometers",
                                               "getTemperature");
  (void)pems->queries().RegisterContinuous(
      "readings", "invoke[getTemperature](thermometers)");
  for (auto _ : state) {
    pems->Tick();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PemsTick)->Arg(4)->Arg(64)->Arg(256);

void BM_RemoteVsLocalInvocation(benchmark::State& state) {
  // The proxy path (registry -> proxy -> Local ERM -> device) vs a
  // directly registered service.
  const bool remote = state.range(0) == 1;
  auto pems = Pems::Create().MoveValueOrDie();
  (void)pems->tables().ExecuteDdl(
      "PROTOTYPE getTemperature() : (temperature REAL);");
  auto sensor =
      std::make_shared<TemperatureSensorService>("sensor01", 20.0, 1);
  if (remote) {
    (void)pems->Deploy("node", sensor);
    pems->Run(2);
  } else {
    (void)pems->env().registry().Register(sensor);
  }
  PrototypePtr proto =
      pems->env().GetPrototype("getTemperature").ValueOrDie();
  Timestamp instant = 100;
  for (auto _ : state) {
    auto result = pems->env().registry().Invoke(*proto, "sensor01", Tuple(),
                                                ++instant);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RemoteVsLocalInvocation)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"remote"});

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  return serena::bench::RunReproAndBenchmarks(
      argc, argv, [] { serena::ReproduceFigure1(); });
}
