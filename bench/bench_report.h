#ifndef SERENA_BENCH_BENCH_REPORT_H_
#define SERENA_BENCH_BENCH_REPORT_H_

// The shared BENCH_*.json schema: produced by the microbenchmark
// binaries (via bench_util.h) and the serena_bench scenario harness,
// consumed by `serena_bench --compare` and the regression-gate tests.
// Deliberately free of google-benchmark so tools and tests can use the
// report/compare machinery without its static initializers.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"
#include "obs/json.h"

namespace serena {
namespace bench {

/// Version of the BENCH_*.json document layout. v2 added
/// `schema_version`, `kind` and per-record `mode` on top of the original
/// ad-hoc `{bench, records, metrics}` shape.
inline constexpr int kBenchSchemaVersion = 2;

/// How a record behaves under `CompareBenchReports`:
///  - kExact: a deterministic count (rows, ticks, invocations). Any
///    difference from the baseline is a failure, with zero tolerance —
///    these records are the determinism gate.
///  - kTiming: a wall-clock measurement. Only a regression beyond the
///    configured noise threshold AND absolute floor fails; improvements
///    and jitter pass.
enum class RecordMode { kExact, kTiming };

inline const char* RecordModeName(RecordMode mode) {
  return mode == RecordMode::kTiming ? "timing" : "exact";
}

/// One measurement from the reproduction section, destined for the
/// machine-readable BENCH_*.json record.
struct ReproRecord {
  std::string name;
  double value = 0;
  std::string unit;
  RecordMode mode = RecordMode::kExact;
};

/// One BENCH_*.json document: the shared schema produced by both the
/// microbenchmark binaries (`kind` == "micro") and the scenario harness
/// (`kind` == "scenario"), and consumed by `serena_bench --compare`.
struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string name;
  std::string kind = "micro";
  std::vector<ReproRecord> records;
};

/// Renders a report as one compact JSON document. When `metrics_json` is
/// non-empty it is spliced in verbatim as the "metrics" member (callers
/// pass `MetricsRegistry::Global().ToJson()`); baselines are committed
/// without it to keep diffs reviewable.
inline std::string BenchReportJson(const BenchReport& report,
                                   const std::string& metrics_json = {}) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Value(std::int64_t{report.schema_version});
  json.Key("bench").Value(report.name);
  json.Key("kind").Value(report.kind);
  json.Key("records").BeginArray();
  for (const ReproRecord& record : report.records) {
    json.BeginObject();
    json.Key("name").Value(record.name);
    json.Key("value").Value(record.value);
    json.Key("unit").Value(record.unit);
    json.Key("mode").Value(RecordModeName(record.mode));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::string doc = json.TakeString();
  if (!metrics_json.empty()) {
    doc.pop_back();
    doc += ",\"metrics\":";
    doc += metrics_json;
    doc += "}";
  }
  return doc;
}

inline bool WriteBenchReport(const std::string& path,
                             const BenchReport& report,
                             const std::string& metrics_json = {}) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return false;
  }
  const std::string doc = BenchReportJson(report, metrics_json);
  std::fputs(doc.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

/// Parses one BENCH_*.json document. v1 documents (no schema_version /
/// kind / mode) load with defaults, so pre-existing records keep working.
inline Result<BenchReport> ParseBenchReport(std::string_view json) {
  SERENA_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench report is not a JSON object");
  }
  BenchReport report;
  report.schema_version =
      static_cast<int>(doc.NumberOr("schema_version", 1));
  report.name = doc.StringOr("bench", "");
  report.kind = doc.StringOr("kind", "micro");
  const obs::JsonValue* records = doc.Find("records");
  if (records != nullptr && records->is_array()) {
    for (const obs::JsonValue& entry : records->array()) {
      if (!entry.is_object()) continue;
      ReproRecord record;
      record.name = entry.StringOr("name", "");
      record.value = entry.NumberOr("value", 0);
      record.unit = entry.StringOr("unit", "");
      record.mode = entry.StringOr("mode", "exact") == "timing"
                        ? RecordMode::kTiming
                        : RecordMode::kExact;
      if (!record.name.empty()) report.records.push_back(std::move(record));
    }
  }
  return report;
}

inline Result<BenchReport> LoadBenchReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open bench report: ", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SERENA_ASSIGN_OR_RETURN(BenchReport report, ParseBenchReport(buffer.str()));
  if (report.name.empty()) {
    return Status::InvalidArgument("bench report has no name: ", path);
  }
  return report;
}

/// Noise tolerance of the perf-regression gate (timing records only;
/// exact records always require equality).
struct CompareOptions {
  /// Relative slowdown tolerated, e.g. 2.5 means current may exceed the
  /// baseline by up to 250%. CI uses a generous value because baselines
  /// are committed from a different machine.
  double threshold = 2.5;
  /// Absolute slack in milliseconds: a timing regression also needs to
  /// exceed the baseline by this much wall time before it fails, so
  /// microsecond-scale records don't flake. Applies to records with a
  /// recognized time unit (ns/us/ms/s); others compare threshold-only.
  double floor_ms = 5.0;
};

inline double ToMilliseconds(double value, const std::string& unit) {
  if (unit == "ns") return value / 1e6;
  if (unit == "us") return value / 1e3;
  if (unit == "ms") return value;
  if (unit == "s") return value * 1e3;
  return std::nan("");  // Not a time unit.
}

/// Diffs `current` against `baseline`; returns one human-readable line
/// per failure (empty == gate passes). Failures: a baseline record
/// missing from the current run, a unit or mode change, an exact record
/// whose value differs at all, or a timing record regressing beyond
/// BOTH the relative threshold and the absolute floor. Records only in
/// `current` are new measurements, not failures — refresh the baseline
/// to start tracking them.
inline std::vector<std::string> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& current,
    const CompareOptions& options = {}) {
  std::vector<std::string> failures;
  for (const ReproRecord& expected : baseline.records) {
    const ReproRecord* actual = nullptr;
    for (const ReproRecord& record : current.records) {
      if (record.name == expected.name) {
        actual = &record;
        break;
      }
    }
    if (actual == nullptr) {
      failures.push_back(StringFormat("%s: record '%s' missing from run",
                                      baseline.name.c_str(),
                                      expected.name.c_str()));
      continue;
    }
    if (actual->unit != expected.unit) {
      failures.push_back(StringFormat(
          "%s: record '%s' changed unit (%s -> %s)", baseline.name.c_str(),
          expected.name.c_str(), expected.unit.c_str(),
          actual->unit.c_str()));
      continue;
    }
    if (expected.mode == RecordMode::kExact) {
      if (actual->value != expected.value) {
        failures.push_back(StringFormat(
            "%s: exact record '%s' = %.17g, baseline %.17g",
            baseline.name.c_str(), expected.name.c_str(), actual->value,
            expected.value));
      }
      continue;
    }
    // Timing: only regressions beyond threshold AND floor fail.
    if (expected.value <= 0) continue;  // No meaningful baseline.
    const double ratio = actual->value / expected.value;
    if (ratio <= 1.0 + options.threshold) continue;
    const double delta_ms =
        ToMilliseconds(actual->value - expected.value, expected.unit);
    if (!std::isnan(delta_ms) && delta_ms < options.floor_ms) continue;
    failures.push_back(StringFormat(
        "%s: timing record '%s' regressed %.1f%% (%.6g -> %.6g %s, "
        "threshold %.0f%%)",
        baseline.name.c_str(), expected.name.c_str(), (ratio - 1.0) * 100.0,
        expected.value, actual->value, expected.unit.c_str(),
        options.threshold * 100.0));
  }
  return failures;
}

}  // namespace bench
}  // namespace serena

#endif  // SERENA_BENCH_BENCH_REPORT_H_
